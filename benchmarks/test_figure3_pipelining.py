"""Figure 3: alternative pipelinings of a joins+aggregation TCAP DAG.

The paper's figure shows a TCAP program with three joins feeding an
aggregation and two valid decompositions into pipelines, differing in
which join inputs become pipe sinks (hash builds) and which side streams
through the probes.  This bench builds a three-join + aggregation graph,
asks the physical planner for the default plan and a flipped-build-side
plan, prints both, and verifies they execute to identical results.
"""

import pytest

from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    Writer,
    lambda_from_native,
)
from repro.engine import plan_pipelines, run_local
from repro.memory.types import Float64, Int64
from repro.tcap import compile_computations

from bench_utils import report


class Rec:
    def __init__(self, key, payload):
        self.key = key
        self.payload = payload


class KeyJoin(JoinComp):
    def get_selection(self, left, right):
        return lambda_from_native([left], lambda r: _key(r)) == \
            lambda_from_native([right], lambda r: r.key)

    def get_projection(self, left, right):
        return lambda_from_native(
            [left, right], lambda a, b: Rec(_key(a), _payload(a) + b.payload)
        )


def _key(record):
    return record.key if isinstance(record, Rec) else record.key


def _payload(record):
    return record.payload


class SumByKey(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda r: r.key)

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda r: float(r.payload))


def _graph():
    readers = [ObjectReader("db", "s%d" % i) for i in range(4)]
    join1 = KeyJoin().set_input(0, readers[0]).set_input(1, readers[1])
    join2 = KeyJoin().set_input(0, join1).set_input(1, readers[2])
    join3 = KeyJoin().set_input(0, join2).set_input(1, readers[3])
    agg = SumByKey().set_input(join3)
    return Writer("db", "out").set_input(agg)


SOURCES = {
    ("db", "s%d" % i): [Rec(k, 10 ** i * (k + 1)) for k in range(6)]
    for i in range(4)
}


@pytest.mark.benchmark(group="figure3")
def test_figure3_alternative_pipelinings(benchmark):
    program = compile_computations(_graph())
    default_plan = plan_pipelines(program)
    join_outputs = sorted(default_plan.build_sides)
    flipped = plan_pipelines(
        compile_computations(_graph()),
        build_side_overrides={join_outputs[0]: "left"},
    )

    text = "\n".join([
        "Figure 3 — two decompositions of a 3-join + aggregation TCAP DAG",
        "",
        "(b) default build sides:",
        default_plan.describe(),
        "",
        "(c) first join builds on its left input:",
        flipped.describe(),
    ])
    report("figure3_pipelining", text)

    assert default_plan.build_sides != flipped.build_sides
    # Both decompositions compute the same answer.
    out_a, _p, _m = run_local(_graph(), SOURCES)
    out_b, _p2, _m2 = run_local(
        _graph(), SOURCES, build_side_overrides={join_outputs[0]: "left"}
    )
    assert dict(out_a[("db", "out")]) == dict(out_b[("db", "out")])
    # Three hash builds + scan/probe pipelines, ending in one aggregation.
    builds = [p for p in default_plan if p.sink_kind == "hash_build"]
    assert len(builds) == 3
    assert sum(1 for p in default_plan if p.sink_kind == "aggregate") == 1

    benchmark(lambda: plan_pipelines(compile_computations(_graph())))
