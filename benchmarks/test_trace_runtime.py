"""The per-job runtime trace: the numbers behind Figures 4 and 5.

Runs a representative selection + aggregation + join workload on the
simulated cluster and exports the job traces as ``BENCH_trace.json`` in
the repository root — per-stage wall times, engine tuple counts,
buffer-pool activity, and the network's zero-copy/row byte split with a
per-link breakdown.  This file seeds the performance trajectory: future
PRs that touch a hot path re-run it and diff the stage timings.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster import PCCluster
from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.memory import Float64, Int32, Int64, PCObject, String
from repro.obs import render_trace

from bench_utils import report

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_trace.json"
)

N_POINTS = 1200
N_CLUSTERS = 8


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]


class Tag(PCObject):
    fields = [("cluster_id", Int32), ("tag", String)]


class Positive(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_member(arg, "x") > 0.0


class SumByCluster(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


class TagJoin(JoinComp):
    def get_selection(self, tag, point):
        return lambda_from_member(tag, "cluster_id") == \
            lambda_from_member(point, "cluster_id")

    def get_projection(self, tag, point):
        return lambda_from_native(
            [tag, point], lambda t, p: (p.pid, t.tag)
        )


def _load(cluster):
    cluster.create_database("db")
    cluster.create_set("db", "points", Point)
    cluster.create_set("db", "tags", Tag)
    with cluster.loader("db", "points") as load:
        for i in range(N_POINTS):
            load.append(Point, pid=i, cluster_id=i % N_CLUSTERS,
                        x=float(i % 50) - 10.0)
    with cluster.loader("db", "tags") as load:
        for c in range(N_CLUSTERS):
            load.append(Tag, cluster_id=c, tag="T%d" % c)


def _stage_rows(trace):
    rows = []
    for span in trace.spans(kind="stage"):
        totals = span.totals()
        rows.append({
            "stage": span.name,
            "detail": span.detail,
            "wall_s": round(span.duration_s, 6),
            "rows_in": totals.get("engine.rows_in", 0),
            "rows_out": totals.get("engine.rows_out", 0),
            "pages_pinned": totals.get("pool.pages_pinned", 0),
            "net_bytes_zero_copy": totals.get("net.bytes_zero_copy", 0),
            "net_bytes_rows": totals.get("net.bytes_rows", 0),
        })
    return rows


@pytest.mark.benchmark(group="trace")
def test_trace_runtime_writes_bench_json(benchmark):
    cluster = PCCluster(n_workers=4, page_size=1 << 13)
    _load(cluster)

    jobs = {}

    # Job 1: selection + aggregation (the Figure 5 shuffle).
    agg = SumByCluster().set_input(
        Positive().set_input(ObjectReader("db", "points"))
    )
    cluster.execute_computations(
        Writer("db", "sums").set_input(agg), job_name="agg-sums"
    )
    jobs["agg-sums"] = cluster.last_trace

    # Job 2: a partitioned join (structured-row shuffle traffic).
    cluster.broadcast_threshold = 0
    join = TagJoin() \
        .set_input(0, ObjectReader("db", "tags")) \
        .set_input(1, ObjectReader("db", "points"))
    cluster.execute_computations(
        Writer("db", "tagged").set_input(join), job_name="tag-join"
    )
    jobs["tag-join"] = cluster.last_trace

    # Sanity: the workload actually computed something.
    sums = cluster.read("db", "sums", as_pairs=True, comp=agg)
    assert len(sums) == N_CLUSTERS
    assert cluster.read("db", "tagged")

    payload = {
        "benchmark": "trace_runtime",
        "workload": {
            "n_workers": 4,
            "n_points": N_POINTS,
            "n_clusters": N_CLUSTERS,
        },
        "jobs": {
            name: {
                "wall_s": round(trace.root.duration_s, 6),
                "stages": _stage_rows(trace),
                "counters": trace.totals(),
                "trace": trace.to_dict(),
            }
            for name, trace in jobs.items()
        },
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    # The machine-readable trace must round-trip and carry the headline
    # quantities every future perf PR diffs against.
    with open(BENCH_PATH) as f:
        parsed = json.load(f)
    for name, job in parsed["jobs"].items():
        assert job["wall_s"] > 0
        assert job["stages"], name
        assert all(s["wall_s"] >= 0 for s in job["stages"])
    assert parsed["jobs"]["agg-sums"]["counters"]["net.bytes_zero_copy"] > 0
    assert parsed["jobs"]["tag-join"]["counters"]["net.bytes_rows"] > 0
    assert any(
        key.startswith("net.link.")
        for key in parsed["jobs"]["agg-sums"]["counters"]
    )

    report("trace_runtime", "\n\n".join(
        "=== %s ===\n%s" % (name, render_trace(trace))
        for name, trace in jobs.items()
    ))

    # One representative operation for pytest-benchmark stats.
    benchmark(lambda: cluster.execute_computations(
        Writer("db", "sums2").set_input(
            SumByCluster().set_input(
                Positive().set_input(ObjectReader("db", "points"))
            )
        ),
        job_name="agg-sums-bench",
    ))


# -- tracing overhead budget (PR 9) -----------------------------------------------
#
# Distributed tracing must stay effectively free: the same workload on
# identical clusters with the tracer enabled and disabled (the null
# tracer — no spans, no trace ring), interleaved best-of-N so machine
# noise hits both arms equally.  The measured fraction lands in
# BENCH_trace.json's "tracing_overhead" section and CI fails over 5%.

TRIALS = 7
OVERHEAD_BUDGET = 0.05


def _overhead_cluster(tracing):
    cluster = PCCluster(n_workers=4, page_size=1 << 13, tracing=tracing)
    _load(cluster)
    return cluster


def _overhead_job(cluster, job_name):
    import time

    computation = Writer("db", job_name).set_input(
        SumByCluster().set_input(
            Positive().set_input(ObjectReader("db", "points"))
        )
    )
    start = time.perf_counter()
    cluster.execute_computations(computation, job_name=job_name)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="trace")
def test_tracing_overhead_within_budget(benchmark):
    times = {False: [], True: []}
    clusters = {False: _overhead_cluster(False),
                True: _overhead_cluster(True)}
    for tracing, cluster in clusters.items():
        _overhead_job(cluster, "warmup")
    for trial in range(TRIALS):
        for tracing, cluster in clusters.items():
            times[tracing].append(
                _overhead_job(cluster, "run-%d" % trial)
            )

    off = min(times[False])
    on = min(times[True])
    overhead = (on - off) / off

    # The traced arm really did trace; the untraced arm really did not.
    assert clusters[True].last_trace is not None
    assert clusters[True].last_trace.totals()["engine.rows_in"] > 0
    assert clusters[False].last_trace is None
    assert clusters[False].traces(5) == []

    section = {
        "trials": TRIALS,
        "wall_s_tracing_off": round(off, 6),
        "wall_s_tracing_on": round(on, 6),
        "overhead_fraction": round(overhead, 6),
        "overhead_budget": OVERHEAD_BUDGET,
        "samples": {
            "off": [round(t, 6) for t in times[False]],
            "on": [round(t, 6) for t in times[True]],
        },
    }
    try:
        with open(BENCH_PATH) as f:
            payload = json.load(f)
    except (OSError, ValueError):
        payload = {"benchmark": "trace_runtime"}
    payload["tracing_overhead"] = section
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    report("trace_overhead", (
        "tracing off (best of %d): %.4fs\n"
        "tracing on  (best of %d): %.4fs\n"
        "overhead: %.2f%% (budget %.0f%%)"
        % (TRIALS, off, TRIALS, on, 100 * overhead,
           100 * OVERHEAD_BUDGET)
    ))

    assert overhead <= OVERHEAD_BUDGET, (
        "tracing overhead %.2f%% exceeds the %.0f%% budget"
        % (100 * overhead, 100 * OVERHEAD_BUDGET)
    )

    benchmark(lambda: _overhead_job(clusters[True], "bench"))
