"""Figure 4: the PC distributed runtime, end to end.

The paper's architecture figure shows the master (catalog manager,
distributed storage manager, TCAP optimizer, distributed query
scheduler) and the workers' front-end/back-end pairs.  This bench runs a
selection + aggregation across a simulated cluster and prints the trace
each component leaves behind: the job stages the scheduler emitted, the
catalog's dynamic type fetches, per-worker buffer-pool activity, and the
network's zero-copy page traffic.
"""

import pytest

from repro.cluster import PCCluster
from repro.core import (
    AggregateComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
)
from repro.memory import Float64, Int32, Int64, PCObject

from bench_utils import render_table, report


class Reading(PCObject):
    fields = [("sensor", Int32), ("value", Float64)]


class Hot(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_member(arg, "value") > 50.0


class SumBySensor(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "sensor")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "value")


@pytest.mark.benchmark(group="figure4")
def test_figure4_runtime_trace(benchmark):
    cluster = PCCluster(n_workers=3, page_size=1 << 13)
    cluster.register_type(Reading)
    cluster.create_database("db")
    cluster.create_set("db", "readings", Reading)
    with cluster.loader("db", "readings") as load:
        for i in range(600):
            load.append(Reading, sensor=i % 7, value=float(i % 100))

    reader = ObjectReader("db", "readings")
    agg = SumBySensor().set_input(Hot().set_input(reader))
    writer = Writer("db", "sums").set_input(agg)
    job_log = cluster.execute_computations(writer)

    result = cluster.read("db", "sums", as_pairs=True, comp=agg)
    expected = {}
    for i in range(600):
        if (i % 100) > 50:
            expected[i % 7] = expected.get(i % 7, 0.0) + float(i % 100)
    assert result == expected

    rows = [("master", "scheduler", repr(stage)) for stage in job_log]
    rows.append((
        "master", "catalog",
        "%d types registered, %d library fetches served"
        % (len(cluster.catalog.registry.entries()),
           cluster.catalog.library_requests),
    ))
    for worker in cluster.workers:
        stats = worker.storage.stats()
        rows.append((
            worker.worker_id, "front-end storage",
            "pool: %(pages_created)d pages, %(evictions)d evictions, "
            "%(spills)d spills" % stats["buffer_pool"],
        ))
        rows.append((
            worker.worker_id, "front-end catalog",
            "%d dynamic type fetches" % worker.local_catalog.fetches,
        ))
        rows.append((
            worker.worker_id, "back-end",
            "re-forked %d times" % worker.refork_count,
        ))
    network = cluster.network.stats()
    rows.append((
        "network", "traffic",
        "%(messages)d messages, %(bytes_total)d bytes "
        "(%(bytes_zero_copy)d zero-copy)" % network,
    ))
    report("figure4_runtime", render_table(
        "Figure 4 — distributed runtime trace of one execution",
        ("node", "component", "activity"),
        rows,
    ))

    assert any("AggregationJobStage" in repr(s) for s in job_log)
    assert network["bytes_zero_copy"] > 0
    assert all(w.refork_count == 0 for w in cluster.workers)

    benchmark(lambda: cluster.execute_computations(
        Writer("db", "sums2").set_input(
            SumBySensor().set_input(
                Hot().set_input(ObjectReader("db", "readings"))
            )
        )
    ))
