"""Table 3: PC vs baseline on denormalized TPC-H (Section 8.4).

Two computations over nested Customer trees, at six dataset sizes:

* **PC: hot storage** — trees live on PC pages in worker buffer pools;
  scans dereference in place, the aggregation shuffles PC Maps.
* **baseline: hot HDFS** — trees are pickled object files; every run
  re-deserializes them before computing (the paper's hot-HDFS case).
* **baseline: in-RAM deserialized RDD** — the persisted-RDD case; serde
  already paid, only shuffle serde remains.

Reproduction note (see EXPERIMENTS.md): the *mechanism* the paper
attributes PC's 6-66x win to — zero bytes serialized or deserialized on
the PC path versus per-object serde that grows linearly with data on the
baseline — reproduces exactly and is asserted below.  Raw wall-clock
does **not** reproduce in this substrate: PC's in-page field accesses run
through the Python interpreter (~micro-seconds per field) while pickle
runs in C, an inversion the calibration band for this paper predicts
("interpreted, no manual memory layout").  Both facets are reported.
"""

import pytest

from repro.baseline import BaselineContext
from repro.cluster import PCCluster
from repro.tpch import (
    TpchSpec,
    customers_per_supplier_baseline,
    customers_per_supplier_pc,
    load_pc_customers,
    python_customers,
    top_k_jaccard_baseline,
    top_k_jaccard_pc,
)

from bench_utils import fmt_seconds, render_table, report, timed

#: Scaled from the paper's 2.4M..24M customers.
SIZES = [100, 200, 400, 600, 800, 1000]


def _query_parts(customers):
    return sorted(customers[0].part_ids())[:8]


def _run_size(n_customers):
    spec = TpchSpec(n_customers=n_customers, n_parts=150, n_suppliers=12,
                    seed=n_customers)
    k = max(2, n_customers // 100)

    cluster = PCCluster(n_workers=4, page_size=1 << 18)
    load_pc_customers(cluster, spec)
    customers = python_customers(spec)
    query = _query_parts(customers)

    context = BaselineContext(n_partitions=4)
    context.save_object_file(
        context.parallelize(customers), "hdfs://tpch"
    )
    in_ram = context.parallelize(customers).persist()
    in_ram.count()  # force full materialization

    results = {}

    cluster.network.reset()
    context.serde.reset()
    pc_time, (pc_cps, _total) = timed(customers_per_supplier_pc, cluster)
    pc_serde = 0  # by construction: pages move as bytes
    pc_zero_copy = cluster.network.bytes_zero_copy
    hdfs_time, (hdfs_cps, _t) = timed(
        lambda: customers_per_supplier_baseline(
            context.object_file("hdfs://tpch")
        )
    )
    hdfs_serde = context.serde.serialized_bytes + \
        context.serde.deserialized_bytes
    context.serde.reset()
    ram_time, (ram_cps, _t) = timed(
        lambda: customers_per_supplier_baseline(in_ram)
    )
    ram_serde = context.serde.serialized_bytes + \
        context.serde.deserialized_bytes
    assert {s: sorted((c, sorted(p)) for c, p in m.items())
            for s, m in pc_cps.items()} == \
        {s: sorted((c, sorted(p)) for c, p in m.items())
         for s, m in hdfs_cps.items()}
    results["cps"] = {
        "times": (pc_time, hdfs_time, ram_time),
        "serde": (pc_serde, hdfs_serde, ram_serde),
        "pc_zero_copy": pc_zero_copy,
    }

    cluster.network.reset()
    context.serde.reset()
    pc_time, pc_top = timed(top_k_jaccard_pc, cluster, k, query)
    pc_shuffle_rows = cluster.network.bytes_rows
    hdfs_time, hdfs_top = timed(
        lambda: top_k_jaccard_baseline(
            context.object_file("hdfs://tpch"), k, query
        )
    )
    hdfs_serde = context.serde.serialized_bytes + \
        context.serde.deserialized_bytes
    context.serde.reset()
    ram_time, _r = timed(lambda: top_k_jaccard_baseline(in_ram, k, query))
    ram_serde = context.serde.serialized_bytes + \
        context.serde.deserialized_bytes
    assert [c[1] for c in pc_top] == [c[1] for c in hdfs_top]
    results["topk"] = {
        "times": (pc_time, hdfs_time, ram_time),
        "serde": (0, hdfs_serde, ram_serde),
        "pc_shuffle_rows": pc_shuffle_rows,
    }
    return results


@pytest.mark.benchmark(group="table3")
def test_table3_tpch(benchmark):
    measured = {n: _run_size(n) for n in SIZES}

    systems = ("PlinyCompute: hot storage", "baseline: hot HDFS",
               "baseline: in-RAM RDD")
    rows = []
    for computation, label in (("cps", "Customers per Supplier"),
                               ("topk", "top-k Jaccard")):
        for index, system in enumerate(systems):
            rows.append(
                (label, system, "time") + tuple(
                    fmt_seconds(measured[n][computation]["times"][index])
                    for n in SIZES
                )
            )
            rows.append(
                (label, system, "serde KB") + tuple(
                    "%d" % (measured[n][computation]["serde"][index] / 1024)
                    for n in SIZES
                )
            )
    report("table3_tpch", render_table(
        "Table 3 — PC vs baseline for large-scale OO computation "
        "(serde KB = bytes (de)serialized; the PC path is always 0)",
        ("computation", "system", "metric") + tuple(
            "n=%d" % n for n in SIZES
        ),
        rows,
    ))

    for n in SIZES:
        for computation in ("cps", "topk"):
            entry = measured[n][computation]
            pc_serde, hdfs_serde, ram_serde = entry["serde"]
            # The paper's mechanism: the PC path (de)serializes nothing —
            # its pages move as raw bytes — while the baseline's serde
            # work grows with the data.
            assert pc_serde == 0
            assert hdfs_serde > 0
        # cps shuffles real PC Map pages zero-copy; top-k moves at most
        # k candidates per worker (the paper's "hard limit" observation).
        assert measured[n]["cps"]["pc_zero_copy"] > 0
        assert measured[n]["topk"]["pc_shuffle_rows"] < 64 * 1024
    # Baseline serde grows roughly linearly with dataset size.
    small = measured[SIZES[0]]["cps"]["serde"][1]
    large = measured[SIZES[-1]]["cps"]["serde"][1]
    assert large > 5 * small
    # And within the baseline, hot HDFS pays more than in-RAM overall
    # (aggregated across sizes to ride out scheduler jitter).
    hdfs_total = sum(measured[n]["cps"]["times"][1] for n in SIZES)
    ram_total = sum(measured[n]["cps"]["times"][2] for n in SIZES)
    assert ram_total < hdfs_total

    # Representative op for --benchmark-only stats.
    spec = TpchSpec(n_customers=150, seed=1)
    cluster = PCCluster(n_workers=4, page_size=1 << 18)
    load_pc_customers(cluster, spec)
    benchmark(lambda: customers_per_supplier_pc(cluster))
