"""Columnar vs object throughput on the two hot-loop workloads.

The columnar layout exists for exactly two access patterns the paper's
tools hammer: the k-means assignment step (distance argmin over every
point) and TPC-H style lineitem scans (predicate + arithmetic + grouped
sum).  This bench runs both with the identical TCAP program on the
object path (``columnar=False``) and the kernel path, per batch size and
per transport, and persists ``BENCH_columnar.json`` in the repository
root.  The acceptance floor is a 5x rows/sec speedup on the simulated
transport.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cluster import PCCluster
from repro.cluster.transport import remote_available
from repro.core import ObjectReader, Writer
from repro.ml.kmeans_columnar import AssignedSum, load_columnar_points
from repro.tpch.lineitem import load_lineitems, q6_revenue, reference_q6

from bench_utils import render_table, report, timed

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_columnar.json"
)

N_LINEITEMS = 24_000
N_POINTS = 8_000
DIMS = 4
K = 8
BATCH_SIZES = (1024, 4096, 16384)
MIN_SIM_SPEEDUP = 5.0


def _make_cluster(tmp_path, tag, transport, batch_size):
    root = tmp_path / tag
    root.mkdir(parents=True, exist_ok=True)
    # Explicit transport: the sim leg must stay simulated even when the
    # suite as a whole runs under PC_TRANSPORT=process.
    return PCCluster(
        n_workers=3, page_size=1 << 14, batch_size=batch_size,
        spill_root=str(root), transport=transport,
    )


def _measure_q6(cluster):
    columns = load_lineitems(cluster, N_LINEITEMS, seed=5)
    expected = reference_q6(columns)
    q6_revenue(cluster, columnar=True)  # warm caches / fork back-ends
    rates = {}
    for label, columnar in (("object", False), ("columnar", True)):
        elapsed, revenue = timed(q6_revenue, cluster, columnar=columnar)
        assert revenue == expected
        rates[label] = N_LINEITEMS / elapsed
    return rates


def _assign_once(cluster, centers, columnar):
    agg = AssignedSum(centers, dim=None).set_input(
        ObjectReader("ml", "points_col")
    )
    if ("ml", "assign_tmp") in cluster.storage_manager:
        cluster.clear_set("ml", "assign_tmp")
    writer = Writer("ml", "assign_tmp").set_input(agg)
    cluster.execute_computations(writer, columnar=columnar)
    return cluster.read("ml", "assign_tmp", as_pairs=True, comp=agg)


def _measure_kmeans(cluster):
    rng = np.random.default_rng(13)
    points = rng.integers(-64, 64, size=(N_POINTS, DIMS)) / 8.0
    load_columnar_points(cluster, "ml", "points_col", points)
    centers = points[rng.choice(N_POINTS, size=K, replace=False)]
    expected = _assign_once(cluster, centers, columnar=True)  # warm-up
    assert sum(expected.values()) == N_POINTS
    rates = {}
    for label, columnar in (("object", False), ("columnar", True)):
        elapsed, counts = timed(
            _assign_once, cluster, centers, columnar
        )
        assert counts == expected
        rates[label] = N_POINTS / elapsed
    return rates


_WORKLOADS = {"q6_scan": _measure_q6, "kmeans_assign": _measure_kmeans}


def _run_leg(tmp_path, transport, batch_size):
    results = []
    for workload, measure in _WORKLOADS.items():
        cluster = _make_cluster(
            tmp_path, "%s-%s-%d" % (transport, workload, batch_size),
            transport, batch_size,
        )
        try:
            rates = measure(cluster)
        finally:
            cluster.close()
        results.append({
            "workload": workload,
            "transport": transport,
            "batch_size": batch_size,
            "object_rows_per_s": round(rates["object"], 1),
            "columnar_rows_per_s": round(rates["columnar"], 1),
            "speedup": round(rates["columnar"] / rates["object"], 2),
        })
    return results


@pytest.mark.benchmark(group="columnar")
def test_columnar_speedup_writes_bench_json(tmp_path, benchmark):
    rows = []
    for batch_size in BATCH_SIZES:
        rows.extend(_run_leg(tmp_path, "sim", batch_size))
    if remote_available():
        # One process-transport point: the kernels run inside spawned
        # back-ends attached to the same pages over shared memory.
        rows.extend(_run_leg(tmp_path, "process", BATCH_SIZES[1]))

    payload = {
        "benchmark": "columnar_speedup",
        "workload": {
            "n_lineitems": N_LINEITEMS,
            "n_points": N_POINTS,
            "dims": DIMS,
            "k": K,
            "batch_sizes": list(BATCH_SIZES),
            "min_sim_speedup": MIN_SIM_SPEEDUP,
        },
        "results": rows,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    report("columnar_speedup", render_table(
        "Columnar vs object rows/sec (%d lineitems, %d points)"
        % (N_LINEITEMS, N_POINTS),
        ["workload", "transport", "batch", "object rows/s",
         "columnar rows/s", "speedup"],
        [
            [r["workload"], r["transport"], str(r["batch_size"]),
             "{:,.0f}".format(r["object_rows_per_s"]),
             "{:,.0f}".format(r["columnar_rows_per_s"]),
             "%.1fx" % r["speedup"]]
            for r in rows
        ],
    ))

    # Acceptance floor: on the simulated transport each hot loop clears
    # 5x at its best batch size.
    for workload in _WORKLOADS:
        best = max(
            r["speedup"] for r in rows
            if r["workload"] == workload and r["transport"] == "sim"
        )
        assert best >= MIN_SIM_SPEEDUP, (workload, best)

    # One representative operation for pytest-benchmark stats.
    benchmark(lambda: _run_leg(tmp_path, "sim", BATCH_SIZES[1]))
