"""Table 4: LDA per-iteration, PC vs the baseline tuning ladder.

The paper's story: a *vanilla* Spark implementation of the word-based,
non-collapsed Gibbs sampler is ~25x slower than PC; a week of expert
tuning — forcing a broadcast join, forcing a persist, hand-coding the
multinomial sampler — closes the gap to ~2.5x.  PC needs none of that
tuning because join strategy and materialization are the optimizer's
decisions.

Reproduced shape: each tuning step speeds the baseline up, and untuned
PC beats the untuned baseline.
"""

import pytest

import numpy as np

from repro.baseline import BaselineContext
from repro.baseline.mllib import lda as baseline_lda
from repro.cluster import PCCluster
from repro.ml import PCLda

from bench_utils import fmt_seconds, render_table, report, timed

N_DOCS = 250
DICTIONARY = 150
N_TOPICS = 20


def _corpus(seed=0):
    rng = np.random.default_rng(seed)
    triples = []
    for doc in range(N_DOCS):
        words = rng.choice(DICTIONARY, size=12, replace=False)
        for word in words:
            triples.append((doc, int(word), int(rng.integers(5, 30))))
    return triples


@pytest.mark.benchmark(group="table4")
def test_table4_lda(benchmark):
    triples = _corpus()

    # PC: untuned, fully declarative.
    cluster = PCCluster(n_workers=4, page_size=1 << 18)
    pc = PCLda(cluster, n_topics=N_TOPICS, seed=5)
    pc.load(triples, n_docs=N_DOCS, dictionary_size=DICTIONARY)
    pc.iterate()  # warm the catalog / code paths once
    pc_time, _state = timed(pc.iterate)

    baseline_times = {}
    for level in baseline_lda.TUNINGS:
        context = BaselineContext(n_partitions=4)
        tuning = baseline_lda.LdaTuning(level)
        state = baseline_lda.initialize(N_DOCS, DICTIONARY, N_TOPICS, seed=5)
        triples_rdd = context.parallelize(triples)
        baseline_lda.gibbs_iteration(  # warm-up sweep
            context, triples_rdd, state, N_TOPICS, tuning, seed=1
        )
        elapsed, _s = timed(
            baseline_lda.gibbs_iteration,
            context, triples_rdd, state, N_TOPICS, tuning, seed=2,
        )
        baseline_times[level] = elapsed

    report("table4_lda", render_table(
        "Table 4 — LDA, seconds per iteration",
        ("PlinyCompute", "baseline 1: vanilla", "baseline 2: + join hint",
         "baseline 3: + forced persist", "baseline 4: + hand multinomial"),
        [(
            fmt_seconds(pc_time),
            fmt_seconds(baseline_times["vanilla"]),
            fmt_seconds(baseline_times["join_hint"]),
            fmt_seconds(baseline_times["persist"]),
            fmt_seconds(baseline_times["hand_multinomial"]),
        )],
    ))

    # Paper shape: the tuning ladder monotonically helps (dominated by
    # the multinomial swap at this scale), and untuned PC beats the
    # untuned baseline.
    assert baseline_times["hand_multinomial"] < baseline_times["vanilla"]
    assert pc_time < baseline_times["vanilla"]

    benchmark(pc.iterate)
