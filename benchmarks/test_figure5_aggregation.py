"""Figure 5: distributed aggregation, stage by stage.

The paper's figure traces aggregation through the producing stage
(pipelining threads pre-aggregating into per-partition Maps), the
combiner pages shipped across the cluster, and the consuming stage
(aggregation threads merging shuffled Maps).  The bench instruments one
distributed aggregation and reports exactly those quantities, checking
the signature property: the shuffle consists purely of PC Map pages
moved as raw bytes.
"""

import pytest

from repro.cluster import PCCluster
from repro.core import AggregateComp, ObjectReader, Writer, \
    lambda_from_member
from repro.memory import Float64, Int32, Int64, PCObject

from bench_utils import render_table, report


class Sale(PCObject):
    fields = [("store", Int32), ("amount", Float64)]


class TotalByStore(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "store")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "amount")


@pytest.mark.benchmark(group="figure5")
def test_figure5_distributed_aggregation(benchmark):
    n_workers = 4
    cluster = PCCluster(n_workers=n_workers, page_size=1 << 13)
    cluster.register_type(Sale)
    cluster.create_database("db")
    cluster.create_set("db", "sales", Sale)
    n_keys = 50
    with cluster.loader("db", "sales") as load:
        for i in range(2000):
            load.append(Sale, store=i % n_keys, amount=float(i))
    cluster.network.reset()

    reader = ObjectReader("db", "sales")
    agg = TotalByStore().set_input(reader)
    writer = Writer("db", "totals").set_input(agg)
    cluster.execute_computations(writer)

    result = cluster.read("db", "totals", as_pairs=True, comp=agg)
    expected = {}
    for i in range(2000):
        expected[i % n_keys] = expected.get(i % n_keys, 0.0) + float(i)
    assert result == expected

    pre_aggregated = sum(
        engine.metrics.pre_aggregated_keys
        for engine in (
            worker.backend.engines[key]
            for worker in cluster.workers
            for key in worker.backend.engines
        )
    )
    network = cluster.network.stats()
    rows = [
        ("1. producing stage",
         "pipelining threads pre-aggregated %d (key, value) groups "
         "across %d workers" % (pre_aggregated, n_workers)),
        ("2. combining",
         "pre-aggregated groups hash-partitioned into %d partitions "
         "and packed into PC Map combiner pages" % n_workers),
        ("3. shuffle",
         "%d messages, %d bytes — all zero-copy page bytes "
         "(row bytes: %d)" % (
             network["messages"], network["bytes_total"],
             network["bytes_rows"])),
        ("4. consuming stage",
         "aggregation threads merged shuffled Maps into %d final keys"
         % len(result)),
    ]
    report("figure5_aggregation", render_table(
        "Figure 5 — distributed aggregation workflow",
        ("stage", "activity"),
        rows,
    ))

    # The signature property: the aggregation shuffle moves only whole
    # PC Map pages (zero serialization), never pickled rows.
    assert network["bytes_zero_copy"] > 0
    assert network["bytes_rows"] == 0
    # Pre-aggregation means each worker sends at most n_keys groups.
    assert pre_aggregated <= n_keys * n_workers

    benchmark(lambda: cluster.execute_computations(
        Writer("db", "totals2").set_input(
            TotalByStore().set_input(ObjectReader("db", "sales"))
        )
    ))
