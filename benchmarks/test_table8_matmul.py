"""Table 8: the single-thread matrix-multiplication microbenchmark.

The paper's closing sanity check: Java-with-native-kernels (breeze) is
as fast as C++ (Eigen), while GSL lags — so PC's wins cannot be
explained as "C++ beats Java".  The reproduction's casting:

* a generic interpreted kernel (pure-Python triple loop) plays GSL;
* numpy's BLAS-backed ``@`` plays Eigen;
* numpy reached through the baseline engine's broadcast machinery plays
  breeze-native (same native kernel behind a managed-runtime API).

Expected shape: the two native kernels are within noise of each other
and orders of magnitude faster than the interpreted one.
"""

import numpy as np
import pytest

from repro.baseline import BaselineContext

from bench_utils import fmt_seconds, render_table, report, timed

SIZES = [60, 120]


def interpreted_matmul(a, b):
    """The generic, non-native kernel (the GSL role)."""
    n, k = len(a), len(a[0])
    m = len(b[0])
    out = [[0.0] * m for _ in range(n)]
    for i in range(n):
        row = a[i]
        for j in range(m):
            acc = 0.0
            for index in range(k):
                acc += row[index] * b[index][j]
            out[i][j] = acc
    return out


def breeze_style_matmul(context, a, b):
    """numpy reached through the managed-runtime engine (the breeze role)."""
    shared = context.broadcast(b)
    return context.parallelize([a], n_partitions=1).map(
        lambda block: block @ shared.value()
    ).collect()[0]


@pytest.mark.benchmark(group="table8")
def test_table8_matmul(benchmark):
    context = BaselineContext(n_partitions=1)
    rows = []
    shapes = {}
    for size in SIZES:
        rng = np.random.default_rng(size)
        a = rng.normal(size=(size, size))
        b = rng.normal(size=(size, size))
        expected = a @ b

        gsl_time, gsl_result = timed(
            interpreted_matmul, a.tolist(), b.tolist()
        )
        assert np.allclose(gsl_result, expected)
        eigen_time, _r = timed(lambda: a @ b)
        breeze_time, breeze_result = timed(
            breeze_style_matmul, context, a, b
        )
        assert np.allclose(breeze_result, expected)
        rows.append((
            "%dx%d" % (size, size),
            fmt_seconds(gsl_time), fmt_seconds(eigen_time),
            fmt_seconds(breeze_time),
        ))
        shapes[size] = (gsl_time, eigen_time, breeze_time)

    report("table8_matmul", render_table(
        "Table 8 — single-thread matmul (GSL=pure Python, "
        "Eigen=numpy, breeze=numpy behind the managed engine)",
        ("matrix", "GSL-style", "Eigen-style", "breeze-native-style"),
        rows,
    ))

    # Paper shape: native kernels are comparable; the generic kernel is
    # far slower — "Java is as fast as C++ through invoking native code".
    for size in SIZES:
        gsl, eigen, breeze = shapes[size]
        assert gsl > 10 * eigen
        assert gsl > 10 * breeze

    rng = np.random.default_rng(0)
    a = rng.normal(size=(120, 120))
    benchmark(lambda: a @ a)
