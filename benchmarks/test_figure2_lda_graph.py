"""Figure 2: the LDA iteration's graph of Computation objects.

The paper's figure shows LDA's Computations and their input/output
dependencies — per iteration a three-way JoinComp, MultiSelectionComps,
and AggregateComps, with initialization computations that run once.
This bench materializes the reproduction's per-iteration graph, prints
its nodes and edges, and checks the expected operator mix.
"""

import pytest

from repro.cluster import PCCluster
from repro.core import (
    AggregateComp,
    JoinComp,
    MultiSelectionComp,
    ObjectReader,
    Writer,
    computation_graph,
)
from repro.ml import PCLda

from bench_utils import render_table, report


@pytest.mark.benchmark(group="figure2")
def test_figure2_lda_graph(benchmark):
    cluster = PCCluster(n_workers=2, page_size=1 << 16)
    lda = PCLda(cluster, n_topics=3, seed=0)
    lda.load([(0, 0, 1), (0, 1, 2), (1, 1, 1)], n_docs=2,
             dictionary_size=2)
    writers, _doc_agg, _word_agg = lda.build_iteration_graph()
    graph = computation_graph(writers)

    rows = []
    for comp in graph:
        upstream = ", ".join(
            u.name for u in comp.inputs if u is not None
        ) or "(source)"
        rows.append((comp.name, type(comp).__name__, upstream))
    report("figure2_lda_graph", render_table(
        "Figure 2 — LDA's per-iteration Computation graph "
        "(model resampling + reload run once per iteration on the client)",
        ("computation", "type", "inputs"),
        rows,
    ))

    kinds = [type(c) for c in graph]
    assert kinds.count(ObjectReader) == 3  # triples, theta, phi
    assert sum(1 for k in kinds if issubclass(k, JoinComp)) == 1
    joins = [c for c in graph if isinstance(c, JoinComp)]
    assert joins[0].arity == 3  # the paper's three-way join
    assert sum(1 for k in kinds if issubclass(k, MultiSelectionComp)) == 2
    assert sum(1 for k in kinds if issubclass(k, AggregateComp)) == 2
    assert kinds.count(Writer) == 2
    assert len(graph) >= 10

    benchmark(lambda: computation_graph(lda.build_iteration_graph()[0]))
