"""Cluster timeline export acceptance: a real job's trace loads in Perfetto.

Runs the TPC-H acceptance query on the process transport — real spawned
back-end children, remote spans grafted over the clock handshake — and
exports the merged trace with :func:`repro.obs.write_chrome_trace` to
``BENCH_trace_timeline.json`` in the repository root.  The CI process
leg validates the payload (sorted timestamps, matched B/E pairs per
lane, instants with scopes) and uploads the file as an artifact, so
every PR ships a timeline a reviewer can drop into chrome://tracing or
https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster import PCCluster
from repro.cluster.transport import remote_available
from repro.obs import validate_chrome_trace, write_chrome_trace
from repro.tpch import TpchSpec, customers_per_supplier_pc, \
    load_pc_customers

from bench_utils import report

TIMELINE_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_trace_timeline.json"
)

needs_process = pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)

SPEC = TpchSpec(n_customers=60, n_parts=80, n_suppliers=10, seed=11)


@needs_process
@pytest.mark.benchmark(group="trace")
def test_trace_export_writes_valid_chrome_timeline(benchmark):
    cluster = PCCluster(n_workers=3, page_size=1 << 14,
                        transport="process")
    try:
        load_pc_customers(cluster, SPEC)
        customers_per_supplier_pc(cluster)
        trace = cluster.last_trace
        payload = write_chrome_trace(trace, TIMELINE_PATH)

        problems = validate_chrome_trace(payload)
        assert problems == [], problems

        # The timeline really is distributed: one track per child pid
        # plus the coordinator's, with remote task and op spans on them.
        with open(TIMELINE_PATH) as f:
            on_disk = json.load(f)
        assert validate_chrome_trace(on_disk) == []
        events = on_disk["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "B"}
        child_pids = {w.backend.child_pid for w in cluster.workers}
        assert pids == {0} | child_pids
        names = {e["name"] for e in events if e["ph"] == "B"}
        assert any(name.startswith("task:task-") for name in names)
        assert any(name.startswith("op:") for name in names)

        durations = [e for e in events if e["ph"] in ("B", "E")]
        instants = [e for e in events if e["ph"] == "i"]
        report("trace_export", (
            "timeline: %d events (%d B/E, %d instants) over %d tracks\n"
            "wall: %.4fs  remote spans: %d\n"
            "load %s in chrome://tracing or https://ui.perfetto.dev"
            % (len(events), len(durations), len(instants), len(pids),
               trace.root.duration_s,
               sum(1 for s in trace.spans() if s.pid is not None),
               os.path.basename(TIMELINE_PATH))
        ))

        benchmark(lambda: validate_chrome_trace(payload))
    finally:
        cluster.close()
