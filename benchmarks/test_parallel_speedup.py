"""Parallel speedup of the process transport via aggregate memory.

PC's scale-out argument (paper §2, §6) is not only about CPUs: adding
workers multiplies *aggregate buffer-pool memory*.  This bench fixes the
per-worker pool small enough that one worker spill-thrashes the working
set through disk on every scan, while four workers hold their quarters
resident — the same job then runs entirely out of RAM.  Workloads are
the paper's pair: k-means Lloyd iterations (Table 6) and the TPC-H
customer/supplier aggregation (Table 3), both on
``PCCluster(transport="process")`` with real spawned back-ends.

Timing starts after one warm-up iteration, so child-process spawning
and the initial load/spill are excluded from every configuration alike.
The measured numbers land in ``BENCH_parallel.json`` at the repo root;
the acceptance bar is a >= 2x wall-clock speedup at 4 workers on
k-means.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.cluster import PCCluster
from repro.cluster.transport import remote_available
from repro.ml import PCKMeans
from repro.tpch import TpchSpec, customers_per_supplier_pc, load_pc_customers

from bench_utils import render_table, report, timed

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_parallel.json"
)

#: Fixed per-worker pool: the k-means point set (~10 MiB of sealed
#: pages) thrashes through one 5 MiB pool but sits resident across 4.
WORKER_MEMORY = 5 << 20
PAGE_SIZE = 1 << 13
WORKER_COUNTS = (1, 2, 4)

KM_DIM = 16
KM_POINTS = 70000
KM_K = 2
KM_ITERATIONS = 4
#: 56 points x 16 dims x 8 bytes ~= 7 KiB: one chunk fills one 8 KiB
#: page, so the stored footprint tracks the raw data size.
KM_CHUNK = 56

TPCH_SPEC = TpchSpec(n_customers=120, n_parts=160, n_suppliers=12, seed=5)


def _points():
    rng = np.random.default_rng(KM_DIM)
    centers = rng.normal(scale=5.0, size=(KM_K, KM_DIM))
    return np.vstack([
        rng.normal(loc=centers[i % KM_K], scale=0.5,
                   size=(KM_POINTS // KM_K, KM_DIM))
        for i in range(KM_K)
    ])


def _cluster(tmp_path, name, n_workers, page_size=PAGE_SIZE):
    root = tmp_path / name
    root.mkdir()
    return PCCluster(
        n_workers=n_workers, page_size=page_size,
        worker_memory=WORKER_MEMORY, spill_root=str(root),
        transport="process",
    )


def _kmeans_run(tmp_path, n_workers, points):
    cluster = _cluster(tmp_path, "km%d" % n_workers, n_workers)
    km = PCKMeans(cluster, set_name="points")
    km.load(points, chunk_size=KM_CHUNK)
    centers = km.initialize(KM_K, seed=7)
    centers = km.iterate(centers)  # warm-up: spawn children, first scan
    start = time.perf_counter()
    for _ in range(KM_ITERATIONS):
        centers = km.iterate(centers)
    elapsed = time.perf_counter() - start
    spills = sum(
        w.storage.pool.stats()["spills"] for w in cluster.workers
    )
    reloads = sum(
        w.storage.pool.stats()["reloads"] for w in cluster.workers
    )
    cluster.close()
    return elapsed, centers, spills, reloads


def _tpch_run(tmp_path, n_workers):
    # TPC-H customers are nested maps that outgrow the k-means pages.
    cluster = _cluster(
        tmp_path, "tpch%d" % n_workers, n_workers, page_size=1 << 16
    )
    load_pc_customers(cluster, TPCH_SPEC)
    customers_per_supplier_pc(cluster)  # warm-up
    elapsed, (result, total) = timed(customers_per_supplier_pc, cluster)
    cluster.close()
    return elapsed, total


@pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)
@pytest.mark.benchmark(group="parallel")
def test_parallel_speedup(tmp_path, benchmark):
    points = _points()
    kmeans, tpch = {}, {}
    baseline_centers = None
    for n_workers in WORKER_COUNTS:
        elapsed, centers, spills, reloads = _kmeans_run(
            tmp_path, n_workers, points
        )
        kmeans[n_workers] = {
            "seconds": elapsed, "spills": spills, "reloads": reloads,
        }
        if baseline_centers is None:
            baseline_centers = centers
        else:
            # More workers changes the partitioning, not the math.
            np.testing.assert_allclose(centers, baseline_centers)
        t_elapsed, total = _tpch_run(tmp_path, n_workers)
        assert total > 0
        tpch[n_workers] = {"seconds": t_elapsed}

    km_speedup = kmeans[1]["seconds"] / kmeans[4]["seconds"]
    tpch_speedup = tpch[1]["seconds"] / tpch[4]["seconds"]
    doc = {
        "transport": "process",
        "cpus": os.cpu_count(),
        "worker_memory_bytes": WORKER_MEMORY,
        "page_size_bytes": PAGE_SIZE,
        "kmeans": {
            "dim": KM_DIM, "points": KM_POINTS, "k": KM_K,
            "iterations": KM_ITERATIONS,
            "by_workers": {str(n): kmeans[n] for n in WORKER_COUNTS},
            "speedup_4_over_1": round(km_speedup, 3),
        },
        "tpch": {
            "customers": TPCH_SPEC.n_customers,
            "by_workers": {str(n): tpch[n] for n in WORKER_COUNTS},
            "speedup_4_over_1": round(tpch_speedup, 3),
        },
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")

    rows = [
        (
            n,
            "%.2fs" % kmeans[n]["seconds"],
            kmeans[n]["reloads"],
            "%.2fs" % tpch[n]["seconds"],
        )
        for n in WORKER_COUNTS
    ]
    report("parallel_speedup", render_table(
        "Process-transport speedup (fixed %d MiB pool per worker)"
        % (WORKER_MEMORY >> 20),
        ["workers", "kmeans", "reloads", "tpch"], rows,
    ))

    # The scale-out story the bench exists to demonstrate: one worker
    # thrashes its pool on every scan, four hold the set resident.
    assert kmeans[1]["reloads"] > 0
    assert kmeans[4]["reloads"] == 0
    assert km_speedup >= 2.0, (
        "expected >=2x kmeans speedup at 4 workers, got %.2fx" % km_speedup
    )

    benchmark(lambda: None)
