"""Table 5: GMM per-iteration latency, PC vs baseline mllib.

The paper reports a ~3x PC win across dimensionalities 100/300/500.
Both implementations here share the same EM algorithm and random
initialization; PC soft-assigns with the log-space trick, the baseline
with thresholding (the one difference the paper notes).
"""

import numpy as np
import pytest

from repro.baseline import BaselineContext
from repro.baseline.mllib import gmm as baseline_gmm
from repro.cluster import PCCluster
from repro.ml import PCGmm

from bench_utils import fmt_seconds, render_table, report, timed

#: (dimensionality, number of points), scaled from 10^7/10^6 points.
CASES = [(100, 3000), (300, 1000), (500, 1000)]
K = 10


def _points(dim, n):
    rng = np.random.default_rng(dim)
    centers = rng.normal(scale=3.0, size=(K, dim))
    return np.vstack([
        rng.normal(loc=centers[i % K], scale=0.5, size=(max(n // K, 1), dim))
        for i in range(K)
    ])[:n]


@pytest.mark.benchmark(group="table5")
def test_table5_gmm(benchmark):
    rows = []
    shapes = []
    for dim, n in CASES:
        points = _points(dim, n)

        cluster = PCCluster(n_workers=4, page_size=4 << 20)
        pc = PCGmm(cluster, set_name="gmm_%d" % dim).load(
            points, chunk_size=max(128, n // 8)
        )
        weights, means, covariances = pc.initialize(K, seed=2)
        pc.iterate(weights, means, covariances)  # warm-up
        pc_time, _model = timed(pc.iterate, weights, means, covariances)

        context = BaselineContext(n_partitions=8)
        rdd = context.parallelize(list(points)).persist()
        rdd.count()
        b_weights, b_means, b_covs = baseline_gmm.initialize(rdd, K, seed=2)
        baseline_gmm.em_step(rdd, b_weights, b_means, b_covs)  # warm-up
        baseline_time, _m = timed(
            baseline_gmm.em_step, rdd, b_weights, b_means, b_covs
        )
        rows.append((dim, n, fmt_seconds(pc_time),
                     fmt_seconds(baseline_time)))
        shapes.append((dim, pc_time, baseline_time))

    report("table5_gmm", render_table(
        "Table 5 — GMM, seconds per iteration",
        ("dim", "points", "PlinyCompute", "baseline mllib"),
        rows,
    ))

    # Paper shape: PC is at least competitive, and clearly faster at the
    # largest dimensionality (where covariance shuffles dominate and the
    # baseline pickles every partial).
    dim, pc_time, baseline_time = shapes[-1]
    assert pc_time < baseline_time, (
        "dim %d: PC %.3fs vs baseline %.3fs" % (dim, pc_time, baseline_time)
    )

    benchmark(lambda: None)  # timings above; placeholder op
