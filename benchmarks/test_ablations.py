"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the system and shows its effect:

* allocator policy (lightweight-reuse / no-reuse / recycling) on a
  churn-heavy allocation workload;
* TCAP optimization on/off, counting actual user-method invocations;
* broadcast vs hash-partition join threshold, via shuffle traffic;
* pipeline vector (batch) size, via wall time at fixed work;
* page size for MatrixBlock sets, via page counts and wall time.
"""

import numpy as np
import pytest

from repro.cluster import PCCluster
from repro.core import (
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
)
from repro.engine import run_local
from repro.lillinalg import DistributedMatrix
from repro.memory import (
    Float64,
    Int32,
    LIGHTWEIGHT_REUSE,
    NO_REUSE,
    PCObject,
    RECYCLING,
    AllocationBlock,
    make_object_on,
)

from bench_utils import fmt_seconds, render_table, report, timed


class Temp(PCObject):
    fields = [("a", Int32), ("b", Float64)]


@pytest.mark.benchmark(group="ablations")
def test_ablation_allocator_policy(benchmark):
    """Allocate/free churn under the three block policies (Appendix B)."""

    def churn(policy):
        block = AllocationBlock(1 << 20, policy=policy)
        for _round in range(60):
            handles = [
                make_object_on(block, Temp, a=i, b=float(i))
                for i in range(50)
            ]
            for handle in handles:
                handle.release()
        return block

    rows = []
    stats = {}
    for policy, name in ((LIGHTWEIGHT_REUSE, "lightweight-reuse"),
                         (NO_REUSE, "no-reuse"),
                         (RECYCLING, "recycling")):
        elapsed, block = timed(churn, policy)
        stats[name] = block.stats()
        rows.append((
            name, fmt_seconds(elapsed), block.used, block.freed_bytes,
            block.alloc_count,
        ))
    report("ablation_allocator", render_table(
        "Ablation — allocator policies under allocation churn",
        ("policy", "time", "bytes used", "bytes abandoned", "allocations"),
        rows,
    ))
    # Region allocation abandons freed space; the reusing policies do not
    # let the bump pointer run away.
    assert stats["no-reuse"]["used"] > 10 * stats["lightweight-reuse"]["used"]
    assert stats["recycling"]["used"] <= stats["lightweight-reuse"]["used"]

    benchmark(lambda: churn(RECYCLING))


class Pricey:
    calls = 0

    def __init__(self, value):
        self.value = value

    def getValue(self):
        Pricey.calls += 1
        return self.value


class Band(SelectionComp):
    def get_selection(self, arg):
        return (lambda_from_method(arg, "getValue") > 10) & (
            lambda_from_method(arg, "getValue") < 90
        )

    def get_projection(self, arg):
        return lambda_from_member(arg, "value")


@pytest.mark.benchmark(group="ablations")
def test_ablation_tcap_optimization(benchmark):
    """Optimizer on/off: redundant-call elimination halves method calls."""
    data = [Pricey(i % 100) for i in range(4000)]
    sources = {("db", "xs"): data}

    def graph():
        return Writer("db", "out").set_input(
            Band().set_input(ObjectReader("db", "xs"))
        )

    Pricey.calls = 0
    naive_time, (out_a, _p, _m) = timed(
        run_local, graph(), sources, optimized=False
    )
    naive_calls = Pricey.calls
    Pricey.calls = 0
    optimized_time, (out_b, _p2, _m2) = timed(run_local, graph(), sources)
    optimized_calls = Pricey.calls
    assert out_a[("db", "out")] == out_b[("db", "out")]

    report("ablation_tcap_opt", render_table(
        "Ablation — TCAP optimization on/off",
        ("configuration", "time", "user method calls"),
        [("naive plan", fmt_seconds(naive_time), naive_calls),
         ("optimized plan", fmt_seconds(optimized_time), optimized_calls)],
    ))
    assert optimized_calls == len(data)
    assert naive_calls == 2 * len(data)

    benchmark(lambda: run_local(graph(), sources))


class Item(PCObject):
    fields = [("key", Int32), ("weight", Float64)]


class Dim(PCObject):
    fields = [("key", Int32), ("factor", Float64)]


class WeightJoin(JoinComp):
    def get_selection(self, dim, item):
        return lambda_from_member(dim, "key") == \
            lambda_from_member(item, "key")

    def get_projection(self, dim, item):
        return lambda_from_native(
            [dim, item], lambda d, i: i.weight * d.factor
        )


@pytest.mark.benchmark(group="ablations")
def test_ablation_join_threshold(benchmark):
    """Broadcast vs hash-partition join, chosen by the size threshold."""
    def run(threshold):
        cluster = PCCluster(n_workers=4, page_size=1 << 13,
                            broadcast_threshold=threshold)
        cluster.create_database("db")
        cluster.create_set("db", "dims", Dim)
        cluster.create_set("db", "items", Item)
        with cluster.loader("db", "dims") as load:
            for key in range(20):
                load.append(Dim, key=key, factor=2.0)
        with cluster.loader("db", "items") as load:
            for i in range(1500):
                load.append(Item, key=i % 20, weight=float(i))
        cluster.network.reset()
        join = WeightJoin()
        join.set_input(0, ObjectReader("db", "dims"))
        join.set_input(1, ObjectReader("db", "items"))
        writer = Writer("db", "out").set_input(join)
        elapsed, _log = timed(cluster.execute_computations, writer)
        out = cluster.read("db", "out")
        modes = [
            s.detail.split()[0] for s in cluster.last_job_log
            if s.kind == "BuildHashTableJobStage"
        ]
        return elapsed, cluster.network.stats(), modes, sorted(out)

    b_time, b_net, b_modes, b_out = run(threshold=1 << 30)
    p_time, p_net, p_modes, p_out = run(threshold=0)
    assert b_modes == ["broadcast"]
    assert p_modes == ["partition"]
    assert b_out == p_out

    report("ablation_join_choice", render_table(
        "Ablation — broadcast vs hash-partition join",
        ("mode", "time", "shuffle row bytes", "messages"),
        [("broadcast", fmt_seconds(b_time), b_net["bytes_rows"],
          b_net["messages"]),
         ("partition", fmt_seconds(p_time), p_net["bytes_rows"],
          p_net["messages"])],
    ))
    # The partition join must repartition the big probe side; broadcast
    # ships only the small build table.
    assert p_net["bytes_rows"] > b_net["bytes_rows"]

    benchmark(lambda: run(1 << 30))


@pytest.mark.benchmark(group="ablations")
def test_ablation_vector_size(benchmark):
    """Pipeline batch size: too small pays dispatch, too big pays cache."""
    class Gain(SelectionComp):
        def get_projection(self, arg):
            return lambda_from_native([arg], lambda x: x * 2.0)

    data = list(np.random.default_rng(0).normal(size=20000))
    sources = {("db", "xs"): data}

    rows = []
    times = {}
    for batch_size in (8, 64, 1024, 16384):
        def graph():
            return Writer("db", "out").set_input(
                Gain().set_input(ObjectReader("db", "xs"))
            )

        elapsed, (outputs, _p, metrics) = timed(
            run_local, graph(), sources, batch_size
        )
        assert len(outputs[("db", "out")]) == len(data)
        rows.append((batch_size, fmt_seconds(elapsed), metrics.batches))
        times[batch_size] = elapsed
    report("ablation_vector_size", render_table(
        "Ablation — pipeline vector (batch) size",
        ("batch size", "time", "batches"),
        rows,
    ))
    # Tiny batches pay per-batch overhead.
    assert times[8] > times[1024]

    benchmark(lambda: run_local(
        Writer("db", "out").set_input(
            Gain().set_input(ObjectReader("db", "xs"))
        ), sources, 1024,
    ))


@pytest.mark.benchmark(group="ablations")
def test_ablation_page_size(benchmark):
    """Page size for MatrixBlock sets (the Section 8.3.2 tuning)."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(600, 100))

    rows = []
    results = {}
    for page_size in (1 << 17, 1 << 19, 1 << 21):
        cluster = PCCluster(n_workers=4, page_size=page_size)
        matrix = DistributedMatrix.from_numpy(cluster, "lla", x, 100, 100)
        elapsed, gram = timed(
            lambda: matrix.transpose_multiply(matrix).to_numpy()
        )
        assert np.allclose(gram, x.T @ x)
        pages = sum(
            worker.storage.stats()["buffer_pool"]["pages_created"]
            for worker in cluster.workers
        )
        rows.append((page_size >> 10, fmt_seconds(elapsed), pages))
        results[page_size] = pages
    report("ablation_page_size", render_table(
        "Ablation — page size for MatrixBlock sets",
        ("page KB", "gram time", "pages created"),
        rows,
    ))
    assert results[1 << 17] > results[1 << 21]

    benchmark(lambda: None)
