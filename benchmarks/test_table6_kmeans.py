"""Table 6: k-means initialization and per-iteration latency.

Three configurations (dimensionality x points), three systems:

* PC (a single AggregateComp per iteration, Appendix A);
* baseline mllib over RDDs;
* baseline mllib over the Dataset API — which, as the paper found, reads
  columnar data and then *converts to an RDD* before iterating; the
  conversion shows up in the initialization latency at the largest
  input.

Paper shape: PC leads on both initialization and iteration; the Dataset
variant's initialization blows up on the biggest dataset because of the
conversion.
"""

import numpy as np
import pytest

from repro.baseline import BaselineContext, Dataset, ParquetStore
from repro.baseline.mllib import kmeans as baseline_kmeans
from repro.cluster import PCCluster
from repro.ml import PCKMeans

from bench_utils import fmt_seconds, render_table, report, timed

#: (dimensionality, points) — scaled from 10^9/10^8/10^7 points.
CASES = [(10, 40000), (100, 8000), (1000, 1500)]
K = 10


def _points(dim, n):
    rng = np.random.default_rng(dim)
    centers = rng.normal(scale=5.0, size=(K, dim))
    return np.vstack([
        rng.normal(loc=centers[i % K], scale=0.5,
                   size=(max(n // K, 1), dim))
        for i in range(K)
    ])[:n]


@pytest.mark.benchmark(group="table6")
def test_table6_kmeans(benchmark):
    rows = []
    shape = {}
    for dim, n in CASES:
        points = _points(dim, n)

        # PC: init = load + initial centroids.
        cluster = PCCluster(n_workers=4, page_size=4 << 20)
        km = PCKMeans(cluster, set_name="km_%d" % dim)
        pc_init, _none = timed(
            lambda: (km.load(points, chunk_size=max(256, n // 32)),
                     km.initialize(K, seed=7))
        )
        centers = km.initialize(K, seed=7)
        km.iterate(centers)  # warm-up
        pc_iter, _c = timed(km.iterate, centers)

        # Baseline RDD: init = write+read the object file + initial pick.
        context = BaselineContext(n_partitions=8)

        def rdd_init():
            context.save_object_file(
                context.parallelize(list(points)), "hdfs://km"
            )
            rdd = context.object_file("hdfs://km").persist()
            rdd.count()
            return rdd, baseline_kmeans.initialize(rdd, K, seed=7)

        rdd_init_time, (rdd, b_centers) = timed(rdd_init)
        baseline_kmeans._lloyd_step(rdd, b_centers)  # warm-up
        rdd_iter, _c2 = timed(baseline_kmeans._lloyd_step, rdd, b_centers)

        # Baseline Dataset: parquet read, then the Dataset->RDD
        # conversion the paper calls out, then the same Lloyd step.
        def dataset_init():
            schema = ["f%d" % i for i in range(dim)]
            ParquetStore(context).write(
                "hdfs://km_parquet", schema, [tuple(p) for p in points]
            )
            dataset = Dataset.read_parquet(context, "hdfs://km_parquet")
            converted = dataset.to_rdd().map(np.asarray).persist()
            converted.count()
            return converted, baseline_kmeans.initialize(converted, K, seed=7)

        ds_init_time, (ds_rdd, ds_centers) = timed(dataset_init)
        ds_iter, _c3 = timed(baseline_kmeans._lloyd_step, ds_rdd, ds_centers)

        rows.append((
            dim, n,
            fmt_seconds(pc_init), fmt_seconds(rdd_init_time),
            fmt_seconds(ds_init_time),
            fmt_seconds(pc_iter), fmt_seconds(rdd_iter), fmt_seconds(ds_iter),
        ))
        shape[dim] = (pc_iter, rdd_iter, ds_init_time, rdd_init_time)

    report("table6_kmeans", render_table(
        "Table 6 — k-means: initialization and per-iteration latency",
        ("dim", "points", "PC init", "RDD init", "Dataset init",
         "PC iter", "RDD iter", "Dataset iter"),
        rows,
    ))

    # Paper shape: PC's iteration beats the RDD baseline at the largest
    # configuration, and the Dataset variant pays extra initialization
    # (the conversion) versus the RDD variant on the biggest dataset.
    big_dim = CASES[0][0]
    pc_iter, rdd_iter, ds_init, rdd_init = shape[big_dim]
    assert pc_iter < rdd_iter
    assert ds_init > rdd_init * 0.5  # conversion cost is material

    benchmark(lambda: None)
