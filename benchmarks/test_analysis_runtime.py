"""Full-repo static-analysis wall clock: the CI latency budget.

The pcsan lint (all nine rules, including the CFG/dataflow-backed
PC007–PC009) runs over the entire ``src`` tree on every CI push, so its
wall time is a latency budget, not just a curiosity: the acceptance bar
is under ten seconds for the whole repository.  The rendered table
splits the pattern rules from the path-sensitive rules so a regression
points at the layer that caused it.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import run_lint

from bench_utils import fmt_seconds, render_table, report, timed

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

BUDGET_SECONDS = 10.0


@pytest.mark.benchmark(group="analysis")
def test_full_repo_lint_within_budget(benchmark):
    pattern_rules = {"PC001", "PC002", "PC003", "PC004", "PC005", "PC006"}
    flow_rules = {"PC007", "PC008", "PC009"}

    pattern_s, pattern_findings = timed(
        run_lint, [SRC], select=pattern_rules
    )
    flow_s, flow_findings = timed(run_lint, [SRC], select=flow_rules)
    total_s, findings = timed(run_lint, [SRC])

    n_files = sum(
        len([f for f in files if f.endswith(".py")])
        for _root, _dirs, files in os.walk(SRC)
    )

    table = render_table(
        "Full-repo pcsan lint (%d Python files)" % n_files,
        ["pass", "rules", "wall", "findings"],
        [
            ["pattern (AST)", "PC001-PC006", fmt_seconds(pattern_s),
             len(pattern_findings)],
            ["dataflow (CFG)", "PC007-PC009", fmt_seconds(flow_s),
             len(flow_findings)],
            ["all", "PC001-PC009", fmt_seconds(total_s), len(findings)],
        ],
    )
    report("analysis_runtime", table)

    assert findings == []  # the repo stays rule-clean
    assert total_s < BUDGET_SECONDS, (
        "full-repo lint took %.2fs, budget is %.1fs" % (total_s,
                                                        BUDGET_SECONDS)
    )

    # One representative operation for pytest-benchmark stats.
    benchmark(lambda: run_lint([SRC], select=flow_rules))
