"""TPC-H workload tests: PC and baseline agree with the oracle."""

import pytest

from repro.baseline import BaselineContext
from repro.cluster import PCCluster
from repro.tpch import (
    TpchSpec,
    customers_per_supplier_baseline,
    customers_per_supplier_pc,
    load_pc_customers,
    python_customers,
    reference_customers_per_supplier,
    reference_top_k,
    top_k_jaccard_baseline,
    top_k_jaccard_pc,
)

SPEC = TpchSpec(n_customers=40, n_parts=60, n_suppliers=8, seed=3)


@pytest.fixture(scope="module")
def cluster():
    cluster = PCCluster(n_workers=2, page_size=1 << 16)
    count = load_pc_customers(cluster, SPEC)
    assert count == 40
    return cluster


@pytest.fixture(scope="module")
def customers():
    return python_customers(SPEC)


def test_pc_nested_customers_survive_page_movement(cluster, customers):
    """Loaded trees read back identical to the generator's records."""
    scanned = {h.cust_key: h for h in cluster.read("tpch", "customers")}
    assert len(scanned) == 40
    for oracle in customers:
        handle = scanned[oracle.cust_key]
        view = handle.deref()
        assert view.name == oracle.name
        assert view.part_ids() == oracle.part_ids()
        assert view.supplier_parts() == oracle.supplier_parts()


def _normalize(result):
    return {
        supplier: {c: sorted(parts) for c, parts in customers.items()}
        for supplier, customers in result.items()
    }


def test_customers_per_supplier_pc_matches_oracle(cluster, customers):
    result, total = customers_per_supplier_pc(cluster)
    oracle = reference_customers_per_supplier(customers)
    assert _normalize(result) == _normalize(oracle)
    assert total == sum(len(v) for v in oracle.values())


def test_customers_per_supplier_baseline_matches_oracle(customers):
    context = BaselineContext(n_partitions=3)
    rdd = context.parallelize(customers)
    result, total = customers_per_supplier_baseline(rdd)
    oracle = reference_customers_per_supplier(customers)
    assert _normalize(result) == _normalize(oracle)
    assert context.shuffles >= 1  # the baseline really shuffled


def test_top_k_jaccard_pc_matches_oracle(cluster, customers):
    query = sorted(customers[0].part_ids())[:5] + [1, 2, 3]
    expected = reference_top_k(customers, 4, query)
    result = top_k_jaccard_pc(cluster, 4, query)
    assert [(round(s, 9), c) for s, c, _p in result] == \
        [(round(s, 9), c) for s, c, _p in expected]


def test_top_k_jaccard_baseline_matches_oracle(customers):
    context = BaselineContext(n_partitions=3)
    rdd = context.parallelize(customers)
    query = sorted(customers[0].part_ids())[:5] + [1, 2, 3]
    expected = reference_top_k(customers, 4, query)
    result = top_k_jaccard_baseline(rdd, 4, query)
    assert [(round(s, 9), c) for s, c, _p in result] == \
        [(round(s, 9), c) for s, c, _p in expected]
