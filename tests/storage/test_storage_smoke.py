"""Smoke tests for the storage substrate: pool, page sets, managers."""

import pytest

from repro.catalog import CatalogManager, LocalCatalog
from repro.errors import BufferPoolExhaustedError, SetNotFoundError
from repro.memory import Float64, Int32, PCObject, String, VectorType
from repro.storage import (
    BufferPool,
    DistributedStorageManager,
    LocalStorageServer,
)


class Point(PCObject):
    fields = [("pid", Int32), ("name", String), ("xs", VectorType(Float64))]


def test_writer_rolls_pages_and_scan_reads_back(tmp_path):
    pool = BufferPool(1 << 22, page_size=1 << 13, spill_dir=str(tmp_path))
    server = LocalStorageServer("w0", 1 << 22, page_size=1 << 13,
                                spill_dir=str(tmp_path / "s"))
    page_set = server.create_set("db", "points", "Point")
    with page_set.writer() as writer:
        for i in range(500):
            writer.append(Point, pid=i, name="p%d" % i, xs=[float(i)] * 8)
    assert len(page_set) == 500
    assert len(page_set.page_ids) > 1  # small pages forced a roll

    seen = [h.pid for h in page_set.scan_objects()]
    assert seen == list(range(500))
    assert pool.stats()["pages_created"] == 0  # unrelated pool untouched


def test_spill_and_reload_roundtrip(tmp_path):
    server = LocalStorageServer(
        "w0", capacity_bytes=1 << 15, page_size=1 << 13,
        spill_dir=str(tmp_path),
    )
    page_set = server.create_set("db", "pts", "Point")
    with page_set.writer() as writer:
        for i in range(400):
            writer.append(Point, pid=i, name="x" * 20, xs=[1.0] * 16)
    # Pool can hold 4 pages; the set is bigger, so scans must reload spills.
    assert server.pool.stats()["spills"] > 0
    total = sum(1 for _ in page_set.scan_objects())
    assert total == 400
    assert server.pool.stats()["reloads"] > 0


def test_pool_exhaustion_when_everything_pinned(tmp_path):
    pool = BufferPool(1 << 14, page_size=1 << 13, spill_dir=str(tmp_path))
    pool.new_page()
    pool.new_page()
    with pytest.raises(BufferPoolExhaustedError):
        pool.new_page()


def test_distributed_manager_partitions_over_workers(tmp_path):
    catalog = CatalogManager()
    catalog.register_type(Point)
    manager = DistributedStorageManager(catalog)
    for i in range(3):
        manager.attach_server(
            LocalStorageServer("w%d" % i, 1 << 22,
                               spill_dir=str(tmp_path / str(i)))
        )
    manager.create_database("db")
    manager.create_set("db", "pts", "Point")
    targets = [manager.next_target("db", "pts") for _ in range(6)]
    assert targets == ["w0", "w1", "w2", "w0", "w1", "w2"]
    assert len(manager.partitions("db", "pts")) == 3
    manager.drop_set("db", "pts")
    with pytest.raises(SetNotFoundError):
        manager.next_target("db", "pts")


def test_page_bytes_move_between_workers(tmp_path):
    """A sealed page's bytes adopted by another worker read identically."""
    catalog = CatalogManager()
    catalog.register_type(Point)
    alice = LocalStorageServer("a", 1 << 22, registry=LocalCatalog(catalog).registry,
                               spill_dir=str(tmp_path / "a"))
    bob_catalog = LocalCatalog(catalog)
    bob = LocalStorageServer("b", 1 << 22, registry=bob_catalog.registry,
                             spill_dir=str(tmp_path / "b"))
    src = alice.create_set("db", "s", "Point")
    with src.writer() as writer:
        for i in range(10):
            writer.append(Point, pid=i, name="n%d" % i, xs=[float(i)])
    dst = bob.create_set("db", "s", "Point")
    for page_id in src.page_ids:
        with src.pinned_page(page_id) as page:
            dst.adopt_page_bytes(page.to_bytes())
    values = [(h.pid, h.name) for h in dst.scan_objects()]
    assert values == [(i, "n%d" % i) for i in range(10)]
    # Bob's process had never seen Point: the catalog fetch path fired.
    assert bob_catalog.fetches >= 1
