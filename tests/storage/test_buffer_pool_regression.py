"""Regression tests for buffer-pool spill/reload accounting.

The seed code's ``_reload`` made room for the spill file's byte count
(an allocation block's *used prefix*) but then charged the budget for
the full reconstituted page — so a pool under pressure could silently
hold more resident bytes than its capacity.  These tests pin the fixed
invariants under a tight budget.
"""

import pytest

from repro.errors import BufferPoolExhaustedError
from repro.memory import Float64, Int32, PCObject, VectorType
from repro.memory.objects import make_object_on
from repro.storage import BufferPool, LocalStorageServer


class Tiny(PCObject):
    fields = [("pid", Int32), ("xs", VectorType(Float64))]


PAGE = 1 << 12


def _fill_lightly(page):
    """Put one small object on a page so its used-prefix is tiny but real."""
    handle = make_object_on(page.block, Tiny, pid=1, xs=[1.0, 2.0])
    page.block.set_root(handle.offset, handle.type_code)


def _resident_bytes(pool):
    return sum(p.size for p in pool._pages.values() if p.in_memory)


def test_reload_respects_the_memory_budget(tmp_path):
    # Capacity of 2.5 pages: A spilled, B pinned, C unpinned-resident.
    pool = BufferPool(PAGE * 2 + PAGE // 2, page_size=PAGE,
                      spill_dir=str(tmp_path))
    page_a = pool.new_page()
    _fill_lightly(page_a)
    pool.unpin(page_a.page_id, dirty=True)
    page_b = pool.new_page()          # stays pinned
    _fill_lightly(page_b)
    page_c = pool.new_page()          # evicts A to make room
    _fill_lightly(page_c)
    pool.unpin(page_c.page_id, dirty=True)
    assert not page_a.in_memory
    assert pool.stats()["spills"] >= 1

    # Reloading A must evict C: its spill file is ~100 bytes, but the
    # page it reconstitutes into occupies a full PAGE of budget.
    pool.pin(page_a.page_id)
    assert page_a.in_memory
    assert pool.in_memory_bytes <= pool.capacity_bytes
    assert pool.in_memory_bytes == _resident_bytes(pool)
    assert not page_c.in_memory


def test_reload_raises_rather_than_overcommit_when_all_pinned(tmp_path):
    pool = BufferPool(PAGE * 2 + PAGE // 2, page_size=PAGE,
                      spill_dir=str(tmp_path))
    page_a = pool.new_page()
    _fill_lightly(page_a)
    pool.unpin(page_a.page_id, dirty=True)
    page_b = pool.new_page()
    _fill_lightly(page_b)
    page_c = pool.new_page()  # evicts A; both B and C stay pinned
    _fill_lightly(page_c)

    with pytest.raises(BufferPoolExhaustedError):
        pool.pin(page_a.page_id)
    # The failed reload must not corrupt the books.
    assert pool.in_memory_bytes == _resident_bytes(pool)
    assert pool.in_memory_bytes <= pool.capacity_bytes


def test_spill_reload_churn_keeps_accounting_exact(tmp_path):
    """Scan a set much larger than the pool; the budget never drifts."""
    server = LocalStorageServer(
        "w0", capacity_bytes=PAGE * 3, page_size=PAGE,
        spill_dir=str(tmp_path),
    )
    page_set = server.create_set("db", "pts", "Tiny")
    with page_set.writer() as writer:
        for i in range(300):
            writer.append(Tiny, pid=i, xs=[float(i)] * 24)
    pool = server.pool
    assert pool.stats()["spills"] > 0

    for _ in range(3):  # repeated scans force reload churn
        assert sum(1 for _ in page_set.scan_objects()) == 300
        assert pool.in_memory_bytes == _resident_bytes(pool)
        assert pool.in_memory_bytes <= pool.capacity_bytes
    assert pool.stats()["reloads"] > 0

    # A reloaded-then-evicted-again page costs the budget exactly once.
    before = pool.in_memory_bytes
    spilled_id = next(
        pid for pid, p in pool._pages.items() if not p.in_memory
    )
    pool.pin(spilled_id)
    pool.unpin(spilled_id)
    assert pool.in_memory_bytes == _resident_bytes(pool)
    assert abs(pool.in_memory_bytes - before) <= PAGE
