"""Property tests: page bytes survive every hop byte-identically.

A sealed page's bytes are the unit of durability — they spill to disk,
ship over the network, and are adopted into replica partitions verbatim.
These hypothesis properties pin the byte-level contract: for arbitrary
object populations, every hop returns the exact sealed bytes (equal
CRC32, equal values), and the corruption hooks are *detectable* — a
flipped payload never checksums clean, and a checksummed transfer either
re-sends its way to the pristine bytes or raises, never delivers damage.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.catalog import CatalogManager, LocalCatalog
from repro.cluster import FaultInjector, RetryPolicy
from repro.cluster.network import SimulatedNetwork
from repro.errors import PageCorruptionError
from repro.memory import Float64, Int32, PCObject, String, VectorType
from repro.storage import (
    LocalStorageServer,
    corrupt_bytes,
    page_checksum,
)


class Rec(PCObject):
    fields = [("pid", Int32), ("name", String), ("xs", VectorType(Float64))]


ascii_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24
)
payloads = st.lists(
    st.tuples(
        st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
        ascii_names,
        st.lists(st.integers(-1000, 1000).map(float), max_size=8),
    ),
    min_size=1,
    max_size=60,
)


def _write(server, records):
    page_set = server.create_set("db", "s", "Rec")
    with page_set.writer() as writer:
        for pid, name, xs in records:
            writer.append(Rec, pid=pid, name=name, xs=xs)
    return page_set


def _values(page_set):
    return [(h.pid, h.name, list(h.xs)) for h in page_set.scan_objects()]


@settings(max_examples=30, deadline=None)
@given(payloads)
def test_ship_and_adopt_roundtrip_is_byte_identical(tmp_path_factory, records):
    """sealed page -> network ship -> replica adopt: same bytes, values."""
    tmp = tmp_path_factory.mktemp("roundtrip")
    catalog = CatalogManager()
    catalog.register_type(Rec)
    src_server = LocalStorageServer(
        "a", 1 << 22, page_size=1 << 12,
        registry=LocalCatalog(catalog).registry, spill_dir=str(tmp / "a"),
    )
    dst_server = LocalStorageServer(
        "b", 1 << 22, page_size=1 << 12,
        registry=LocalCatalog(catalog).registry, spill_dir=str(tmp / "b"),
    )
    network = SimulatedNetwork()
    src = _write(src_server, records)
    dst = dst_server.create_set("db", "s", "Rec")
    checksums = []
    for page_id in src.page_ids:
        with src.pinned_page(page_id) as page:
            data = page.to_bytes()
        checksum = page_checksum(data)
        delivered = network.ship_page("a", "b", data, checksum=checksum)
        assert delivered == data  # byte-identical arrival
        pid = dst.adopt_page_bytes(delivered, count_objects=False)
        checksums.append((pid, checksum))
    for pid, checksum in checksums:
        with dst.pinned_page(pid) as page:
            assert page_checksum(page.to_bytes()) == checksum
    assert _values(dst) == _values(src) == [
        (pid, name, xs) for pid, name, xs in records
    ]


@settings(max_examples=20, deadline=None)
@given(payloads)
def test_spill_reload_roundtrip_is_checksum_identical(
    tmp_path_factory, records,
):
    """sealed page -> spill -> reload: the CRC32 stamped at seal holds."""
    tmp = tmp_path_factory.mktemp("spill")
    server = LocalStorageServer(
        "w", capacity_bytes=3 << 12, page_size=1 << 12,
        spill_dir=str(tmp),
    )
    page_set = _write(server, records)
    sealed = {}
    for page_id in page_set.page_ids:
        with page_set.pinned_page(page_id) as page:
            sealed[page_id] = page_checksum(page.to_bytes())
    # Walking every page through a 3-page pool evicts and reloads; each
    # reload must hand back exactly the sealed bytes.
    for page_id in page_set.page_ids:
        with page_set.pinned_page(page_id) as page:
            assert page_checksum(page.to_bytes()) == sealed[page_id]
    assert _values(page_set) == [(p, n, xs) for p, n, xs in records]


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=4096))
def test_corruption_always_changes_the_checksum(data):
    flipped = corrupt_bytes(data)
    assert flipped != data
    assert page_checksum(flipped) != page_checksum(data)
    # Corruption is an involution: flipping twice restores the bytes.
    assert corrupt_bytes(flipped) == data


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=1, max_size=4096), st.integers(0, 2))
def test_corrupted_transfer_never_delivers_damage(data, corruptions):
    """With a checksum, a flipped arrival is re-sent or raises — the
    caller either gets the pristine bytes or an error, never damage."""
    injector = FaultInjector().corrupt_transfer(times=corruptions)
    network = SimulatedNetwork(
        fault_injector=injector,
        retry_policy=RetryPolicy(transfer_retries=2),
    )
    delivered = network.ship_page(
        "a", "b", data, checksum=page_checksum(data)
    )
    assert delivered == data
    assert network.transfers_corrupted == corruptions


def test_corrupted_transfer_without_budget_raises():
    injector = FaultInjector().corrupt_transfer(times=5)
    network = SimulatedNetwork(
        fault_injector=injector, retry_policy=RetryPolicy.disabled()
    )
    data = b"sealed page bytes"
    with pytest.raises(PageCorruptionError):
        network.ship_page("a", "b", data, checksum=page_checksum(data))


def test_unchecksummed_transfer_delivers_flipped_bytes():
    """Without a checksum the network cannot detect the flip — the
    damaged payload is delivered for downstream checks to catch."""
    injector = FaultInjector().corrupt_transfer(times=1)
    network = SimulatedNetwork(fault_injector=injector)
    data = b"sealed page bytes"
    assert network.ship_page("a", "b", data) == corrupt_bytes(data)
