"""Tests for the Spark-like baseline engine."""

import numpy as np
import pytest

from repro.baseline import BaselineContext, Dataset, ParquetStore
from repro.baseline.mllib import kmeans, linalg


@pytest.fixture
def context():
    return BaselineContext(n_partitions=3)


def test_narrow_transformations_pipeline_without_serde(context):
    rdd = context.parallelize(range(100)).map(lambda x: x * 2).filter(
        lambda x: x % 3 == 0
    )
    before = context.serde.serialize_calls
    assert sorted(rdd.collect()) == sorted(
        x * 2 for x in range(100) if (x * 2) % 3 == 0
    )
    assert context.serde.serialize_calls == before  # no boundary crossed


def test_reduce_by_key_shuffles_with_serde(context):
    rdd = context.parallelize(range(100)).map(lambda x: (x % 5, 1))
    before = context.serde.serialize_calls
    result = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
    assert result == {i: 20 for i in range(5)}
    assert context.serde.serialize_calls > before
    assert context.shuffles == 1


def test_join_modes_agree(context):
    left = context.parallelize([(i % 4, i) for i in range(20)])
    right = context.parallelize([(i, "r%d" % i) for i in range(4)])
    shuffled = sorted(left.join(right).collect())
    broadcast = sorted(left.join(right, broadcast_hint=True).collect())
    assert shuffled == broadcast
    assert len(shuffled) == 20


def test_persist_skips_recomputation(context):
    calls = []

    def trace(x):
        calls.append(x)
        return x

    rdd = context.parallelize(range(10)).map(trace).persist()
    rdd.collect()
    rdd.collect()
    assert len(calls) == 10  # second collect served from cache

    rdd.unpersist()
    rdd.collect()
    assert len(calls) == 20


def test_object_file_roundtrip_pays_serde(context):
    data = list(range(50))
    context.save_object_file(context.parallelize(data), "hdfs://d")
    before = context.serde.deserialize_calls
    loaded = context.object_file("hdfs://d")
    assert sorted(loaded.collect()) == data
    assert context.serde.deserialize_calls > before
    # Every read re-deserializes (hot HDFS semantics).
    loaded.collect()
    assert context.serde.deserialize_calls > before + 1


def test_group_by_key_and_distinct(context):
    rdd = context.parallelize([1, 2, 2, 3, 3, 3])
    assert sorted(rdd.distinct().collect()) == [1, 2, 3]
    groups = dict(
        rdd.map(lambda x: (x, x)).group_by_key().collect()
    )
    assert sorted(groups[3]) == [3, 3, 3]


def test_dataset_parquet_roundtrip_and_rdd_conversion(context):
    rows = [(i, float(i) * 2) for i in range(30)]
    ParquetStore(context).write("hdfs://p", ["id", "value"], rows)
    dataset = Dataset.read_parquet(context, "hdfs://p")
    assert dataset.count() == 30
    selected = dataset.select("value")
    assert selected.schema == ["value"]
    filtered = dataset.where("id", lambda v: v < 5)
    assert filtered.count() == 5
    before = context.serde.serialize_calls
    rdd = dataset.to_rdd()
    assert context.serde.serialize_calls > before  # conversion pays serde
    assert sorted(rdd.collect()) == rows


def test_mllib_kmeans_recovers_clusters(context):
    rng = np.random.default_rng(0)
    blobs = np.vstack([
        rng.normal(loc=center, scale=0.05, size=(40, 2))
        for center in [(0, 0), (5, 5), (0, 5)]
    ])
    rdd = context.parallelize(list(blobs))
    model, _history = kmeans.train(rdd, k=3, iterations=8, seed=1)
    recovered = sorted(tuple(np.round(c).astype(int)) for c in model.centers)
    assert recovered == [(0, 0), (0, 5), (5, 5)]


def test_mllib_gramian_and_regression(context):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(60, 4))
    beta = np.array([1.0, -1.0, 2.0, 0.5])
    y = x @ beta
    matrix = linalg.RowMatrix(context.parallelize(list(x)))
    assert np.allclose(matrix.gramian(), x.T @ x)
    y_rdd = context.parallelize(list(y))
    estimate = linalg.linear_regression(matrix, y_rdd)
    assert np.allclose(estimate, beta, atol=1e-8)


def test_mllib_nearest_neighbor(context):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(50, 3))
    matrix = linalg.RowMatrix(context.parallelize(list(x)))
    query = x[17] + 1e-6
    dist, _part, _off, row = matrix.nearest_neighbor(query)
    assert np.allclose(row, x[17])
