"""Property-based differential tests: pipelined engine vs interpreter.

For randomly generated predicates, projections, join keys, and batch
sizes, the optimized vectorized pipeline engine must agree exactly with
the unoptimized reference interpreter — the strongest statement that
TCAP optimization and physical planning preserve semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.engine import LocalInterpreter, run_local
from repro.memory.types import Int64
from repro.tcap import compile_computations


class Row:
    def __init__(self, key, value):
        self.key = key
        self.value = value

    def getKey(self):
        return self.key


rows = st.lists(
    st.tuples(st.integers(0, 8), st.integers(-50, 50)), max_size=60
).map(lambda pairs: [Row(k, v) for k, v in pairs])

thresholds = st.integers(-40, 40)
batch_sizes = st.sampled_from([1, 3, 17, 1024])


def _mk_selection(threshold):
    class Sel(SelectionComp):
        def get_selection(self, arg):
            return lambda_from_member(arg, "value") > threshold

        def get_projection(self, arg):
            return lambda_from_native([arg], lambda r: (r.key, r.value))

    return Sel()


@settings(max_examples=40, deadline=None)
@given(rows, thresholds, batch_sizes)
def test_selection_engine_matches_interpreter(data, threshold, batch_size):
    def graph():
        return Writer("db", "out").set_input(
            _mk_selection(threshold).set_input(ObjectReader("db", "xs"))
        )

    sources = {("db", "xs"): data}
    reference = LocalInterpreter(
        compile_computations(graph()), sources
    ).run().get(("db", "out"), [])
    outputs, _p, _m = run_local(graph(), sources, batch_size=batch_size)
    assert outputs.get(("db", "out"), []) == reference
    assert reference == [
        (r.key, r.value) for r in data if r.value > threshold
    ]


class KeyJoin(JoinComp):
    def get_selection(self, left, right):
        return lambda_from_member(left, "key") == \
            lambda_from_native([right], lambda r: r.getKey())

    def get_projection(self, left, right):
        return lambda_from_native(
            [left, right], lambda a, b: (a.key, a.value, b.value)
        )


@settings(max_examples=30, deadline=None)
@given(rows, rows, batch_sizes, st.booleans())
def test_join_engine_matches_interpreter(left, right, batch_size, flip):
    def graph():
        join = KeyJoin()
        join.set_input(0, ObjectReader("db", "l"))
        join.set_input(1, ObjectReader("db", "r"))
        return Writer("db", "out").set_input(join)

    sources = {("db", "l"): left, ("db", "r"): right}
    program = compile_computations(graph())
    reference = sorted(
        LocalInterpreter(program, sources).run().get(("db", "out"), [])
    )
    overrides = None
    if flip:
        from repro.tcap.ir import JoinStmt

        join_stmt = next(
            s for s in program.statements if isinstance(s, JoinStmt)
        )
        overrides = {join_stmt.output: "left"}
    outputs, _p, _m = run_local(
        graph(), sources, batch_size=batch_size,
        build_side_overrides=overrides,
    )
    assert sorted(outputs.get(("db", "out"), [])) == reference
    expected = sorted(
        (a.key, a.value, b.value)
        for a in left for b in right if a.key == b.key
    )
    assert reference == expected


class SumByKey(AggregateComp):
    key_type = Int64
    value_type = Int64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "key")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "value")


@settings(max_examples=30, deadline=None)
@given(rows, batch_sizes)
def test_aggregation_engine_matches_interpreter(data, batch_size):
    def graph():
        return Writer("db", "out").set_input(
            SumByKey().set_input(ObjectReader("db", "xs"))
        )

    sources = {("db", "xs"): data}
    reference = dict(
        LocalInterpreter(compile_computations(graph()), sources)
        .run().get(("db", "out"), [])
    )
    outputs, _p, _m = run_local(graph(), sources, batch_size=batch_size)
    assert dict(outputs.get(("db", "out"), [])) == reference
    expected = {}
    for row in data:
        expected[row.key] = expected.get(row.key, 0) + row.value
    assert reference == expected
