"""Tests for physical planning and the vectorized pipeline engine.

The key property: for every computation graph, the pipelined engine and
the reference interpreter produce identical results, optimized or not.
"""

import pytest

from repro.core import (
    AggregateComp,
    JoinComp,
    MultiSelectionComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
)
from repro.engine import LocalInterpreter, plan_pipelines, run_local
from repro.engine.physical import SINK_AGGREGATE, SINK_HASH_BUILD
from repro.memory.types import Float64, Int64
from repro.tcap import compile_computations


class Order:
    def __init__(self, order_id, customer, total):
        self.order_id = order_id
        self.customer = customer
        self.total = total

    def getCustomer(self):
        return self.customer


class Customer:
    def __init__(self, name, region):
        self.name = name
        self.region = region


ORDERS = [Order(i, "c%d" % (i % 5), 10.0 * i) for i in range(57)]
CUSTOMERS = [Customer("c%d" % i, "r%d" % (i % 2)) for i in range(5)]


class BigOrders(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_member(arg, "total") > 100.0

    def get_projection(self, arg):
        return lambda_from_member(arg, "order_id")


class OrderCustomerJoin(JoinComp):
    def get_selection(self, cust, order):
        return lambda_from_member(cust, "name") == \
            lambda_from_method(order, "getCustomer")

    def get_projection(self, cust, order):
        return lambda_from_native(
            [cust, order], lambda c, o: (c.region, o.total)
        )


class TotalByRegion(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda pair: pair[1])


def _graph():
    reader_c = ObjectReader("db", "customers")
    reader_o = ObjectReader("db", "orders")
    join = OrderCustomerJoin().set_input(0, reader_c).set_input(1, reader_o)
    agg = TotalByRegion().set_input(join)
    return Writer("db", "by_region").set_input(agg)


SOURCES = {("db", "orders"): ORDERS, ("db", "customers"): CUSTOMERS}


def test_pipeline_engine_matches_interpreter_on_join_aggregate():
    program = compile_computations(_graph())
    expected = LocalInterpreter(program, SOURCES).run()
    outputs, _program, metrics = run_local(_graph(), SOURCES)
    assert dict(outputs[("db", "by_region")]) == dict(
        expected[("db", "by_region")]
    )
    assert metrics.batches > 0


@pytest.mark.parametrize("batch_size", [1, 3, 7, 1024])
def test_batch_size_does_not_change_results(batch_size):
    outputs, _p, _m = run_local(_graph(), SOURCES, batch_size=batch_size)
    result = dict(outputs[("db", "by_region")])
    totals = {}
    for customer in CUSTOMERS:
        for order in ORDERS:
            if order.customer == customer.name:
                totals[customer.region] = totals.get(customer.region, 0.0) \
                    + order.total
    assert result == totals


def test_plan_shapes_for_join_aggregate():
    program = compile_computations(_graph())
    plan = plan_pipelines(program)
    sink_kinds = [p.sink_kind for p in plan]
    assert SINK_HASH_BUILD in sink_kinds
    assert SINK_AGGREGATE in sink_kinds
    # Build pipelines must run before the probe pipeline that needs them.
    built = set()
    for pipeline in plan:
        for kind, name in pipeline.depends_on():
            if kind == "hash_table":
                assert name in built
        if pipeline.sink_kind == SINK_HASH_BUILD:
            built.add(pipeline.sink.output)


def test_build_side_override_changes_plan():
    program = compile_computations(_graph())
    default_plan = plan_pipelines(program)
    join_out = next(
        name for name in default_plan.build_sides
    )
    flipped = plan_pipelines(
        compile_computations(_graph()),
        build_side_overrides={join_out: "left"},
    )
    # Both plans execute to the same answer.
    outputs_a, _p, _m = run_local(_graph(), SOURCES)
    outputs_b, _p2, _m2 = run_local(
        _graph(), SOURCES, build_side_overrides={join_out: "left"}
    )
    assert dict(outputs_a[("db", "by_region")]) == dict(
        outputs_b[("db", "by_region")]
    )
    assert flipped.build_sides != default_plan.build_sides


def test_selection_only_pipeline():
    reader = ObjectReader("db", "orders")
    writer = Writer("db", "big").set_input(BigOrders().set_input(reader))
    outputs, _p, metrics = run_local(writer, SOURCES, batch_size=8)
    expected = [o.order_id for o in ORDERS if o.total > 100.0]
    assert outputs[("db", "big")] == expected
    assert metrics.batches == (len(ORDERS) + 7) // 8


def test_multi_consumer_materializes():
    """One selection feeding two writers forces a materialization cut."""
    reader = ObjectReader("db", "orders")
    sel = BigOrders().set_input(reader)
    writer_a = Writer("db", "a").set_input(sel)
    writer_b = Writer("db", "b").set_input(sel)
    outputs, program, _m = run_local([writer_a, writer_b], SOURCES)
    assert outputs[("db", "a")] == outputs[("db", "b")]
    plan = plan_pipelines(program)
    assert any(p.sink_kind == "materialize" for p in plan)


def test_flatten_through_pipeline():
    class Explode(MultiSelectionComp):
        def get_projection(self, arg):
            return lambda_from_native(
                [arg], lambda o: [o.order_id] * (o.order_id % 3)
            )

    reader = ObjectReader("db", "orders")
    writer = Writer("db", "x").set_input(Explode().set_input(reader))
    outputs, _p, _m = run_local(writer, SOURCES, batch_size=10)
    expected = []
    for order in ORDERS:
        expected.extend([order.order_id] * (order.order_id % 3))
    assert outputs[("db", "x")] == expected
