"""VectorList invariants: the column dict is private and stays rectangular.

Seed regression: ``columns`` was a public dict, so any pipeline stage
could assign a wrong-length column and silently desynchronize ``len``
(which reads the first column) from the rest.  Mutation now goes through
``append_column``, which re-validates the equal-length invariant on
every write, not just at construction.
"""

import numpy as np
import pytest

from repro.engine.vectors import DEFAULT_BATCH_SIZE, VectorList, batches_of
from repro.errors import ExecutionError


def test_constructor_rejects_ragged_columns():
    with pytest.raises(ExecutionError, match="ragged"):
        VectorList({"a": [1, 2, 3], "b": [1]})


def test_append_column_validates_every_write():
    batch = VectorList({"a": [1, 2, 3]})
    with pytest.raises(ExecutionError, match="'b' has 2 rows, expected 3"):
        batch.append_column("b", [10, 20])
    batch.append_column("b", [10, 20, 30])
    assert batch.column("b") == [10, 20, 30]
    assert len(batch) == 3


def test_append_column_replaces_in_place():
    batch = VectorList({"a": [1, 2]})
    batch.append_column("a", [5, 6])
    assert batch.column("a") == [5, 6]
    # Replacement is held to the same invariant as addition.
    with pytest.raises(ExecutionError, match="ragged"):
        batch.append_column("a", [7])


def test_columns_are_not_reachable_as_a_public_attribute():
    batch = VectorList({"a": [1]})
    with pytest.raises(AttributeError):
        batch.columns
    with pytest.raises(AttributeError):
        batch.columns = {"a": [1, 2]}


def test_first_column_cannot_be_desynchronized():
    # The empty case: the first appended column sets the length.
    batch = VectorList()
    assert len(batch) == 0
    batch.append_column("a", [1, 2])
    assert len(batch) == 2
    with pytest.raises(ExecutionError, match="ragged"):
        batch.append_column("z", [])


def test_with_column_shares_others_and_validates():
    base = VectorList({"a": [1, 2]})
    extended = base.with_column("b", [3, 4])
    assert extended.column("a") is base.column("a")
    assert "b" not in base
    with pytest.raises(ExecutionError, match="ragged"):
        base.with_column("b", [3])


def test_shallow_copy_selects_and_shares():
    base = VectorList({"a": [1], "b": [2], "c": [3]})
    copy = base.shallow_copy(["a", "c"])
    assert copy.names() == ["a", "c"]
    assert copy.column("a") is base.column("a")
    with pytest.raises(ExecutionError, match="no column 'b'"):
        copy.column("b")


def test_numpy_columns_satisfy_the_len_contract():
    batch = VectorList({"a": np.arange(4)})
    batch.append_column("b", np.zeros(4))
    assert len(batch) == 4
    with pytest.raises(ExecutionError, match="ragged"):
        batch.append_column("c", np.zeros(5))


def test_batches_of_slices_aligned_columns():
    columns = {"a": list(range(10)), "b": list(range(10, 20))}
    batches = list(batches_of(columns, batch_size=4))
    assert [len(b) for b in batches] == [4, 4, 2]
    assert batches[-1].column("b") == [18, 19]
    assert list(batches_of({})) == []
    assert DEFAULT_BATCH_SIZE == 1024
