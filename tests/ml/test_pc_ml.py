"""Tests for the PC ML implementations (k-means, GMM, LDA)."""

import numpy as np
import pytest

from repro.cluster import PCCluster
from repro.ml import PCGmm, PCKMeans, PCLda
from repro.ml.kmeans import assign_chunk
from repro.ml.sampling import multinomial_fast, multinomial_slow


@pytest.fixture
def cluster():
    return PCCluster(n_workers=2, page_size=1 << 16)


def _blobs(rng, centers, per=40, scale=0.05):
    return np.vstack([
        rng.normal(loc=c, scale=scale, size=(per, len(c))) for c in centers
    ])


def test_assign_chunk_matches_bruteforce():
    rng = np.random.default_rng(0)
    points = rng.normal(size=(100, 4))
    centers = rng.normal(size=(5, 4))
    norms = np.linalg.norm(centers, axis=1)
    fast, _d = assign_chunk(points, centers, norms)
    brute = np.argmin(
        ((points[:, None, :] - centers[None]) ** 2).sum(axis=2), axis=1
    )
    assert np.array_equal(fast, brute)


def test_pc_kmeans_recovers_clusters(cluster):
    rng = np.random.default_rng(1)
    points = _blobs(rng, [(0, 0), (6, 6), (0, 6)])
    km = PCKMeans(cluster).load(points, chunk_size=30)
    centers, history = km.train(k=3, iterations=6, seed=3)
    recovered = sorted(tuple(np.round(c).astype(int)) for c in centers)
    assert recovered == [(0, 0), (0, 6), (6, 6)]
    assert len(history) == 6


def test_pc_gmm_recovers_means(cluster):
    rng = np.random.default_rng(2)
    points = _blobs(rng, [(0.0, 0.0), (5.0, 5.0)], per=60, scale=0.2)
    gmm = PCGmm(cluster).load(points, chunk_size=40)
    weights, means, covariances = gmm.train(k=2, iterations=8, seed=5)
    recovered = sorted(tuple(np.round(m).astype(int)) for m in means)
    assert recovered == [(0, 0), (5, 5)]
    assert weights.sum() == pytest.approx(1.0)


def _toy_corpus(rng, n_docs=12, dictionary=20, topics=2):
    """Two planted topics over disjoint word halves."""
    half = dictionary // 2
    triples = []
    for doc in range(n_docs):
        topic_words = range(half) if doc % 2 == 0 else range(half, dictionary)
        for _ in range(6):
            word = int(rng.choice(list(topic_words)))
            triples.append((doc, word, int(rng.integers(1, 4))))
    return triples


def test_pc_lda_runs_and_improves_separation(cluster):
    rng = np.random.default_rng(3)
    triples = _toy_corpus(rng)
    lda = PCLda(cluster, n_topics=2, seed=11)
    lda.load(triples, n_docs=12, dictionary_size=20)
    theta, phi = lda.run(iterations=3)
    assert len(theta) == 12
    assert len(phi) == 20
    for probs in theta.values():
        assert probs.sum() == pytest.approx(1.0)
    # The per-iteration graph has the Figure 2 shape: a 3-way join, two
    # multi-selections, two aggregations, readers and writers.
    assert lda.computation_count() >= 10


def test_multinomial_samplers_agree_in_distribution():
    rng_a = np.random.default_rng(0)
    rng_b = np.random.default_rng(0)
    probabilities = np.array([0.5, 0.3, 0.2])
    slow = sum(
        multinomial_slow(rng_a, 30, probabilities) for _ in range(200)
    )
    fast = sum(
        multinomial_fast(rng_b, 30, probabilities) for _ in range(200)
    )
    total = 30 * 200
    assert np.allclose(slow / total, probabilities, atol=0.02)
    assert np.allclose(fast / total, probabilities, atol=0.02)
