"""Unit tests for the lilLinAlg DSL front end (lexer + parser)."""

import pytest

from repro.errors import DslParseError
from repro.lillinalg.dsl import (
    Assign,
    BinOp,
    Call,
    Name,
    Parser,
    Postfix,
    tokenize,
)


def _parse(source):
    return Parser(tokenize(source)).parse_program()


def test_tokenizer_recognizes_matrix_operators():
    kinds = [t.kind for t in tokenize("X '* y %*% z .* w ^-1 ';")]
    assert "TMUL" in kinds
    assert "MMUL" in kinds
    assert "EMUL" in kinds
    assert "INV" in kinds
    assert "'" in kinds


def test_tokenizer_skips_comments_and_whitespace():
    tokens = tokenize("# a comment\nX = y;  # trailing\n")
    assert [t.kind for t in tokens] == ["NAME", "=", "NAME", ";", "EOF"]


def test_tokenizer_rejects_garbage():
    with pytest.raises(DslParseError):
        tokenize("X = @;")


def test_parser_builds_the_regression_ast():
    (statement,) = _parse('beta = (X \'* X)^-1 %*% (X \'* y);')
    assert isinstance(statement, Assign)
    assert statement.target == "beta"
    expr = statement.expr
    assert isinstance(expr, BinOp) and expr.op == "MMUL"
    assert isinstance(expr.left, Postfix) and expr.left.op == "INV"
    inner = expr.left.operand
    assert isinstance(inner, BinOp) and inner.op == "TMUL"


def test_precedence_multiplication_binds_tighter_than_addition():
    (statement,) = _parse("R = A + B %*% C;")
    expr = statement.expr
    assert expr.op == "+"
    assert isinstance(expr.right, BinOp) and expr.right.op == "MMUL"


def test_postfix_transpose_chains():
    (statement,) = _parse("T = A'';")
    expr = statement.expr
    assert isinstance(expr, Postfix) and expr.op == "'"
    assert isinstance(expr.operand, Postfix)


def test_function_calls_with_string_and_expr_arguments():
    (statement,) = _parse('save(rowSum(X), "db", "sums");')
    assert isinstance(statement, Call)
    assert statement.fn == "save"
    assert isinstance(statement.args[0], Call)
    assert statement.args[0].fn == "rowSum"
    assert isinstance(statement.args[1], Name)


def test_missing_semicolon_raises():
    with pytest.raises(DslParseError):
        _parse("X = y")


def test_unbalanced_parens_raise():
    with pytest.raises(DslParseError):
        _parse("X = (a + b;")
