"""lilLinAlg correctness tests: every distributed op vs numpy."""

import numpy as np
import pytest

from repro.cluster import PCCluster
from repro.lillinalg import DistributedMatrix, LilLinAlg


@pytest.fixture(scope="module")
def cluster():
    return PCCluster(n_workers=2, page_size=1 << 16)


RNG = np.random.default_rng(7)


def _mat(cluster, values, block=3):
    return DistributedMatrix.from_numpy(
        cluster, "lla", values, block, block
    )


def test_roundtrip(cluster):
    a = RNG.normal(size=(7, 5))
    assert np.allclose(_mat(cluster, a).to_numpy(), a)


def test_multiply(cluster):
    a = RNG.normal(size=(7, 6))
    b = RNG.normal(size=(6, 4))
    result = _mat(cluster, a).multiply(_mat(cluster, b)).to_numpy()
    assert np.allclose(result, a @ b)


def test_transpose_and_transpose_multiply(cluster):
    a = RNG.normal(size=(8, 5))
    b = RNG.normal(size=(8, 3))
    da, db = _mat(cluster, a), _mat(cluster, b)
    assert np.allclose(da.transpose().to_numpy(), a.T)
    assert np.allclose(da.transpose_multiply(db).to_numpy(), a.T @ b)


def test_add_subtract_elementwise(cluster):
    a = RNG.normal(size=(5, 5))
    b = RNG.normal(size=(5, 5))
    da, db = _mat(cluster, a), _mat(cluster, b)
    assert np.allclose(da.add(db).to_numpy(), a + b)
    assert np.allclose(da.subtract(db).to_numpy(), a - b)
    assert np.allclose(da.elementwise_multiply(db).to_numpy(), a * b)


def test_scale_and_reductions(cluster):
    a = RNG.normal(size=(6, 4))
    da = _mat(cluster, a)
    assert np.allclose(da.scale_multiply(2.5).to_numpy(), 2.5 * a)
    assert np.allclose(da.row_sum().to_numpy().ravel(), a.sum(axis=1))
    assert np.allclose(da.col_sum().to_numpy().ravel(), a.sum(axis=0))
    assert da.min_element() == pytest.approx(a.min())
    assert da.max_element() == pytest.approx(a.max())


def test_inverse(cluster):
    a = RNG.normal(size=(4, 4)) + 4 * np.eye(4)
    result = _mat(cluster, a).inverse().to_numpy()
    assert np.allclose(result, np.linalg.inv(a))


def test_subtract_row_vector(cluster):
    a = RNG.normal(size=(6, 4))
    v = RNG.normal(size=4)
    result = _mat(cluster, a).subtract_row_vector(v).to_numpy()
    assert np.allclose(result, a - v)


def test_dimension_mismatch_raises(cluster):
    from repro.errors import LinAlgError

    a = _mat(cluster, RNG.normal(size=(4, 4)))
    b = _mat(cluster, RNG.normal(size=(5, 4)))
    with pytest.raises(LinAlgError):
        a.multiply(b)
    with pytest.raises(LinAlgError):
        a.add(b)


def test_dsl_linear_regression(cluster):
    """The paper's headline DSL program computes OLS correctly."""
    n, d = 40, 3
    x = RNG.normal(size=(n, d))
    beta_true = np.array([1.5, -2.0, 0.5])
    y = x @ beta_true + 0.01 * RNG.normal(size=n)

    lla = LilLinAlg(cluster)
    lla.load_numpy("X", x, block_rows=8, block_cols=d)
    lla.load_numpy("y", y.reshape(-1, 1), block_rows=8, block_cols=1)
    beta = lla.run("""
        X = load("lla", "X");
        y = load("lla", "y");
        beta = (X '* X)^-1 %*% (X '* y);
        save(beta, "lla", "beta");
    """)
    estimate = beta.to_numpy().ravel()
    expected = np.linalg.solve(x.T @ x, x.T @ y)
    assert np.allclose(estimate, expected, atol=1e-8)


def test_dsl_parse_errors(cluster):
    from repro.errors import DslParseError

    lla = LilLinAlg(cluster)
    with pytest.raises(DslParseError):
        lla.run("X = ;")
    with pytest.raises(DslParseError):
        lla.run("X = load(")
