"""End-to-end smoke tests for the PC object model.

These mirror the paper's running examples: the DataPoint class from
Section 3, zero-cost movement of a whole allocation block, and the
cross-block deep-copy rule from Section 6.4.
"""

import pytest

from repro.errors import BlockFullError
from repro.memory import (
    Float64,
    Handle,
    Int32,
    MapType,
    PCObject,
    String,
    VectorType,
    AllocationBlock,
    make_allocation_block,
    make_object,
    pop_allocation_block,
    use_allocation_block,
)


class DataPoint(PCObject):
    fields = [
        ("dims", Int32),
        ("label", String),
        ("data", VectorType(Float64)),
    ]


@pytest.fixture
def block():
    blk = make_allocation_block(1 << 20)
    yield blk
    pop_allocation_block()


def test_make_object_and_field_access(block):
    point = make_object(DataPoint, dims=3, label="p0", data=[1.0, 2.0, 3.0])
    view = point.deref()
    assert view.dims == 3
    assert view.label == "p0"
    assert view.data.to_list() == [1.0, 2.0, 3.0]


def test_handle_attribute_sugar(block):
    point = make_object(DataPoint, dims=7, label="x")
    assert point.dims == 7
    assert point.label == "x"


def test_zero_cost_movement_roundtrip(block):
    point = make_object(DataPoint, dims=2, label="moved", data=[5.0, 6.0])
    block.set_root(point.offset, point.type_code)
    raw = block.to_bytes()

    arrived = AllocationBlock.from_bytes(raw)
    offset, code = arrived.root()
    view = Handle(arrived, offset, code).deref()
    assert view.dims == 2
    assert view.label == "moved"
    assert view.data.to_list() == [5.0, 6.0]


def test_vector_numpy_view_aliases_page(block):
    point = make_object(DataPoint, dims=4, data=[0.0, 0.0, 0.0, 0.0])
    arr = point.deref().data.as_numpy()
    arr[:] = [9.0, 8.0, 7.0, 6.0]
    assert point.deref().data.to_list() == [9.0, 8.0, 7.0, 6.0]


def test_cross_block_assignment_deep_copies(block):
    donor = make_object(DataPoint, dims=1, label="donor", data=[42.0])
    with use_allocation_block(AllocationBlock(1 << 20)) as other:
        receiver = make_object(DataPoint, dims=9)
        # Assigning a vector living on `block` into an object on `other`
        # must deep-copy it; afterwards the two copies are independent.
        receiver.deref().data = donor.deref().data
        receiver.deref().data.append(100.0)
    assert donor.deref().data.to_list() == [42.0]
    assert receiver.deref().data.to_list() == [42.0, 100.0]
    assert receiver.block is other


def test_refcount_reclaims_space(block):
    before = block.active_objects
    point = make_object(DataPoint, dims=5, label="temp", data=[1.0])
    assert block.active_objects > before
    point.release()
    assert block.active_objects == before


def test_block_full_raises():
    small = make_allocation_block(4096)
    try:
        with pytest.raises(BlockFullError):
            for _ in range(10000):
                make_object(DataPoint, dims=1, data=[1.0] * 64)
    finally:
        pop_allocation_block()
    assert small.used <= small.size


def test_map_of_string_to_vector(block):
    map_type = MapType(String, VectorType(Int32))
    table = make_object(map_type)
    view = table.deref()
    view.put("alice", [1, 2, 3])
    view.put("bob", [4])
    assert sorted(view.keys()) == ["alice", "bob"]
    assert view["alice"].to_list() == [1, 2, 3]
    assert view.get("carol") is None
    view.put("alice", [9])
    assert view["alice"].to_list() == [9]
    assert len(view) == 2
