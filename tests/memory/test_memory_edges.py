"""Edge-case tests for the object model: handles, policies, errors."""

import pytest

from repro.errors import (
    BlockFullError,
    DanglingHandleError,
    NullHandleError,
    ObjectModelError,
)
from repro.memory import (
    AllocationBlock,
    Bool,
    Float64,
    Handle,
    Int8,
    Int16,
    Int32,
    Int64,
    NO_REF_COUNT,
    PCObject,
    RECYCLING,
    String,
    UInt32,
    UInt64,
    UNIQUE_OWNERSHIP,
    VectorType,
    make_object_on,
    stable_hash,
)
from repro.memory.layout import align8


class Tiny(PCObject):
    fields = [("x", Int32)]


class AllPrimitives(PCObject):
    fields = [
        ("a", Int8), ("b", Int16), ("c", Int32), ("d", Int64),
        ("e", UInt32), ("f", UInt64), ("g", Float64), ("h", Bool),
    ]


def test_all_primitive_field_types_roundtrip():
    block = AllocationBlock(1 << 16)
    handle = make_object_on(
        block, AllPrimitives,
        a=-5, b=-1000, c=-100000, d=-(2 ** 40), e=4_000_000_000,
        f=2 ** 60, g=3.5, h=True,
    )
    view = handle.deref()
    assert (view.a, view.b, view.c, view.d) == (-5, -1000, -100000,
                                                -(2 ** 40))
    assert (view.e, view.f, view.g, view.h) == (4_000_000_000, 2 ** 60,
                                                3.5, True)


def test_null_handle_behaviour():
    null = Handle.null()
    assert null.is_null
    assert not null
    with pytest.raises(NullHandleError):
        null.deref()
    null.release()  # no-op, never raises
    assert null.copy().is_null


def test_dangling_handle_detected_after_release():
    block = AllocationBlock(1 << 16)
    handle = make_object_on(block, Tiny, x=1)
    alias = Handle(block, handle.offset, handle.type_code)
    handle.release()
    with pytest.raises(DanglingHandleError):
        alias.deref()


def test_handle_copy_keeps_object_alive():
    block = AllocationBlock(1 << 16)
    first = make_object_on(block, Tiny, x=7)
    second = first.copy()
    first.release()
    assert second.deref().x == 7  # still alive through the copy
    second.release()
    assert block.active_objects == 0


def test_no_ref_count_objects_are_never_reclaimed():
    block = AllocationBlock(1 << 16)
    before = block.active_objects
    handle = make_object_on(block, Tiny, x=1, policy=NO_REF_COUNT)
    assert block.active_objects == before  # not counted
    handle.release()
    # Storage is not reclaimed; the object is still readable via offset.
    assert block.refcount_of is not None


def test_unique_ownership_frees_on_release():
    block = AllocationBlock(1 << 16)
    handle = make_object_on(block, Tiny, x=3, policy=UNIQUE_OWNERSHIP)
    offset = handle.offset
    handle.release()
    alias = Handle(block, offset, Tiny.type_code(block))
    with pytest.raises(DanglingHandleError):
        alias.deref()


def test_recycling_reuses_exact_slots():
    block = AllocationBlock(1 << 16, policy=RECYCLING)
    first = make_object_on(block, Tiny, x=1)
    offset = first.offset
    first.release()
    second = make_object_on(block, Tiny, x=2)
    assert second.offset == offset  # recycled verbatim
    assert second.deref().x == 2


def test_block_full_reports_sizes():
    block = AllocationBlock(4096)
    with pytest.raises(BlockFullError) as excinfo:
        while True:
            make_object_on(block, Tiny, x=0)
    assert excinfo.value.requested > 0
    assert excinfo.value.available < excinfo.value.requested


def test_vector_index_errors_and_negative_indexing():
    block = AllocationBlock(1 << 16)
    handle = make_object_on(block, VectorType(Int32), [10, 20, 30])
    view = handle.deref()
    assert view[-1] == 30
    with pytest.raises(IndexError):
        view[3]
    with pytest.raises(IndexError):
        view[-4]
    view[-2] = 99
    assert view.to_list() == [10, 99, 30]


def test_string_values_with_unicode():
    block = AllocationBlock(1 << 16)
    text = "héllo ∑ 世界"
    handle = make_object_on(block, String, text)
    assert handle.deref() == text

    moved = AllocationBlock.from_bytes(block.to_bytes())
    assert String.facade(moved, handle.offset) == text


def test_string_type_rejects_non_strings():
    block = AllocationBlock(1 << 16)
    with pytest.raises(ObjectModelError):
        make_object_on(block, String, 42)


def test_stable_hash_is_deterministic_and_typed():
    assert stable_hash("abc") == stable_hash("abc")
    assert stable_hash(5) == 5
    assert stable_hash((1, "a")) == stable_hash((1, "a"))
    assert stable_hash(True) == 1
    with pytest.raises(ObjectModelError):
        stable_hash(object())


def test_align8():
    assert align8(0) == 0
    assert align8(1) == 8
    assert align8(8) == 8
    assert align8(9) == 16


class Base(PCObject):
    fields = [("a", Int32)]

    def describe(self):
        return "base"


class Derived(Base):
    fields = [("b", Int32)]

    def describe(self):
        return "derived"


def test_inheritance_layout_and_dynamic_dispatch():
    block = AllocationBlock(1 << 16)
    handle = make_object_on(block, Derived, a=1, b=2)
    # A handle typed at the base still dispatches to the subclass.
    as_base = Handle(block, handle.offset, Base.type_code(block))
    view = as_base.deref()
    assert type(view).__name__ == "Derived"
    assert view.describe() == "derived"
    assert (view.a, view.b) == (1, 2)


def test_same_object_identity():
    block = AllocationBlock(1 << 16)
    a = make_object_on(block, Tiny, x=1)
    b = Handle(block, a.offset, a.type_code)
    c = make_object_on(block, Tiny, x=1)
    assert a.same_object(b)
    assert not a.same_object(c)
    assert Handle.null().same_object(Handle.null())
