"""ColumnarPage: encode/decode round-trips and the row-facade bridge.

The columnar root travels in the ordinary root-handle slot, so a built
page must survive every movement path a row page does — ``to_bytes`` /
``from_bytes`` shipping and zero-copy ``from_buffer`` attachment — and
decode to byte-identical columns.  The hypothesis round-trip drives
random schemas (mixed dtypes, names, row counts) through both paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObjectModelError
from repro.memory import AllocationBlock, ColumnarPage, make_allocation_block
from repro.memory.columnar import ColumnarRows, RowView
from repro.schema import Schema, f32, f64, i8, i16, i32, i64, u32, u64

PAGE_SIZE = 1 << 16

_DTYPES = [
    (f64, st.floats(allow_nan=False, allow_infinity=False)),
    (f32, st.floats(allow_nan=False, allow_infinity=False, width=32)),
    (i64, st.integers(min_value=-2**63, max_value=2**63 - 1)),
    (i32, st.integers(min_value=-2**31, max_value=2**31 - 1)),
    (i16, st.integers(min_value=-2**15, max_value=2**15 - 1)),
    (i8, st.integers(min_value=-128, max_value=127)),
    (u32, st.integers(min_value=0, max_value=2**32 - 1)),
    (u64, st.integers(min_value=0, max_value=2**64 - 1)),
]


@st.composite
def schema_and_columns(draw):
    n_cols = draw(st.integers(min_value=1, max_value=4))
    n_rows = draw(st.integers(min_value=1, max_value=64))
    fields = []
    columns = {}
    for index in range(n_cols):
        descriptor, values = draw(st.sampled_from(_DTYPES))
        name = "c%d_%s" % (index, descriptor.name)
        fields.append((name, descriptor))
        columns[name] = draw(
            st.lists(values, min_size=n_rows, max_size=n_rows)
        )
    return Schema(fields), columns


def _expected_arrays(schema, columns):
    return {
        name: np.asarray(columns[name], dtype=schema.dtype_of(name))
        for name in schema.names()
    }


def _assert_page_matches(page, schema, columns):
    expected = _expected_arrays(schema, columns)
    assert page.names() == schema.names()
    assert len(page) == len(next(iter(expected.values())))
    for name in schema.names():
        view = page.column(name)
        assert view.dtype == np.dtype(schema.dtype_of(name))
        assert np.array_equal(view, expected[name])


@settings(max_examples=60, deadline=None)
@given(schema_and_columns())
def test_round_trip_through_bytes_and_buffer(case):
    schema, columns = case
    page = ColumnarPage.build(schema, columns, PAGE_SIZE)
    _assert_page_matches(page, schema, columns)

    # Shipping path: to_bytes -> from_bytes (the copying reconstitution).
    shipped = ColumnarPage.attach(
        AllocationBlock.from_bytes(page.block.to_bytes())
    )
    _assert_page_matches(shipped, schema, columns)

    # Shared-memory path: from_buffer wraps a full-size buffer in place.
    raw = page.block.to_bytes()
    segment = bytearray(PAGE_SIZE)
    segment[: len(raw)] = raw
    mapped = ColumnarPage.attach(AllocationBlock.from_buffer(segment))
    _assert_page_matches(mapped, schema, columns)


@settings(max_examples=25, deadline=None)
@given(schema_and_columns())
def test_row_views_agree_with_columns(case):
    schema, columns = case
    page = ColumnarPage.build(schema, columns, PAGE_SIZE)
    expected = _expected_arrays(schema, columns)
    for index, row in enumerate(page.rows()):
        assert isinstance(row, RowView)
        assert row.as_tuple() == tuple(
            expected[name][index].item() for name in schema.names()
        )
        for name in schema.names():
            assert getattr(row, name) == expected[name][index].item()


def test_attach_returns_none_on_row_layout_pages():
    assert ColumnarPage.attach(make_allocation_block(4096)) is None


def test_column_views_are_read_only_and_zero_copy():
    schema = Schema([("x", f64)])
    page = ColumnarPage.build(schema, {"x": [1.0, 2.0, 3.0]}, 4096)
    view = page.column("x")
    assert not view.flags.writeable
    with pytest.raises(ValueError):
        view[0] = 9.0
    # The view aliases the page bytes rather than copying them.
    assert view.base is not None
    with pytest.raises(KeyError):
        page.column("missing")


def test_ragged_build_is_rejected():
    schema = Schema([("x", f64), ("y", f64)])
    with pytest.raises(ObjectModelError, match="ragged"):
        ColumnarPage.build(schema, {"x": [1.0, 2.0], "y": [3.0]}, 4096)


def test_capacity_for_is_honest():
    schema = Schema([("x", f64), ("y", i32)])
    capacity = ColumnarPage.capacity_for(schema, 4096)
    assert capacity > 0
    columns = {
        "x": np.arange(capacity, dtype=np.float64),
        "y": np.arange(capacity, dtype=np.int32),
    }
    page = ColumnarPage.build(schema, columns, 4096)
    assert len(page) == capacity
    assert np.array_equal(page.column("x"), columns["x"])


def test_batch_mask_slice_and_iteration():
    schema = Schema([("x", f64), ("flag", i64)])
    page = ColumnarPage.build(
        schema,
        {"x": [0.5, 1.5, 2.5, 3.5], "flag": [0, 1, 0, 1]},
        4096,
    )
    rows = page.rows()
    assert isinstance(rows, ColumnarRows)
    assert len(rows) == 4

    odd = rows.mask(np.asarray([False, True, False, True]))
    assert len(odd) == 2
    assert np.array_equal(odd.column("x"), [1.5, 3.5])
    # Masking a masked batch composes.
    assert np.array_equal(odd.mask([True, False]).column("x"), [1.5])

    window = rows.slice(1, 3)
    assert [r.as_tuple() for r in window] == [(1.5, 1), (2.5, 0)]
    assert window[0] == (1.5, 1)
    assert window[-1] == (2.5, 0)
    with pytest.raises(IndexError):
        window[2]
    with pytest.raises(ObjectModelError, match="step 1"):
        rows[::2]
