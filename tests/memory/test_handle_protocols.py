"""Handle protocol behavior: dunder probes and post-release nulling.

``Handle.__getattr__`` delegates unknown attributes to the deref'd
facade.  Protocol machinery (copy, pickle, inspect) probes dunders like
``__deepcopy__`` on arbitrary objects and treats ``AttributeError`` as
"not supported" — any other exception is a real failure.  A null or
freed handle must therefore answer those probes with AttributeError,
never ``NullHandleError``/``DanglingHandleError``.
"""

import copy

import pytest

from repro.errors import NullHandleError
from repro.memory import (
    AllocationBlock,
    Handle,
    String,
    make_object_on,
)

BLOCK_SIZE = 1 << 16


def test_dunder_probe_on_null_handle_raises_attribute_error():
    handle = Handle.null()
    with pytest.raises(AttributeError):
        handle.__deepcopy__
    with pytest.raises(AttributeError):
        handle.__fspath__  # any dunder object itself doesn't provide


def test_dunder_probe_on_freed_handle_raises_attribute_error():
    block = AllocationBlock(BLOCK_SIZE)
    handle = make_object_on(block, String, "probe-me")
    block.free_object(handle.offset)
    with pytest.raises(AttributeError):
        handle.__deepcopy__


def test_deepcopy_of_null_handle_works():
    # Before the fix, copy.deepcopy probed __deepcopy__ and got
    # NullHandleError out of the delegation, breaking the protocol.
    duplicate = copy.deepcopy(Handle.null())
    assert duplicate.is_null


def test_non_dunder_access_still_delegates_and_raises_properly():
    handle = Handle.null()
    with pytest.raises(NullHandleError):
        handle.anything  # plain attributes still surface the real error


# -- release() nulls the handle on both paths --------------------------------


def test_release_fully_nulls_owning_handle():
    block = AllocationBlock(BLOCK_SIZE)
    handle = make_object_on(block, String, "owned")
    assert handle._owns_ref
    handle.release()
    assert handle.is_null
    assert handle.block is None
    assert handle.offset is None
    assert handle.type_code == 0
    assert not handle._owns_ref
    assert repr(handle) == "<Handle null>"


def test_release_fully_nulls_non_owning_handle():
    block = AllocationBlock(BLOCK_SIZE)
    owner = make_object_on(block, String, "shared")
    alias = Handle(block, owner.offset, owner.type_code, owns_ref=False)
    alias.release()
    assert alias.is_null
    assert alias.block is None
    assert alias.offset is None
    assert alias.type_code == 0  # was left stale before the fix
    assert not alias._owns_ref
    assert repr(alias) == "<Handle null>"
    # The owner is untouched: releasing a non-owning alias drops no ref.
    assert owner.deref() == "shared"


def test_release_is_idempotent():
    block = AllocationBlock(BLOCK_SIZE)
    handle = make_object_on(block, String, "twice")
    handle.release()
    handle.release()
    assert repr(handle) == "<Handle null>"
