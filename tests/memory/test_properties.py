"""Property-based tests for the PC object model (hypothesis).

Invariants under test:

* **Vector/Map model equivalence** — arbitrary operation sequences on a
  PC container and on the equivalent Python container always read back
  the same contents.
* **Zero-cost movement** — any allocation block's bytes, reconstituted
  elsewhere, decode to identical objects (handles included).
* **Deep-copy isolation** — a cross-block copy preserves values and
  fully decouples the copy from its source.
* **Allocation accounting** — releasing everything returns the block's
  active-object count to zero under every allocator policy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AllocationBlock,
    Float64,
    Handle,
    Int64,
    LIGHTWEIGHT_REUSE,
    MapType,
    NO_REUSE,
    PCObject,
    RECYCLING,
    String,
    VectorType,
    make_object_on,
)

_BLOCK_SIZE = 1 << 20

keys = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31 - 1),
    st.text(min_size=0, max_size=12),
)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


@settings(max_examples=60, deadline=None)
@given(st.lists(floats, max_size=80))
def test_vector_roundtrips_any_float_list(values):
    block = AllocationBlock(_BLOCK_SIZE)
    handle = make_object_on(block, VectorType(Float64), list(values))
    assert handle.deref().to_list() == [float(v) for v in values]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.text(max_size=20), max_size=40))
def test_vector_of_strings_roundtrips(values):
    block = AllocationBlock(_BLOCK_SIZE)
    handle = make_object_on(block, VectorType(String), list(values))
    assert handle.deref().to_list() == values


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, st.integers(-10**9, 10**9)), max_size=60))
def test_map_matches_python_dict(operations):
    """A PC map fed arbitrary puts always equals the Python dict."""
    block = AllocationBlock(_BLOCK_SIZE)
    key_type_probe = MapType(String, Int64)
    int_map = MapType(Int64, Int64)
    # Split by key kind: PC maps are homogeneous per instantiation.
    model_str, model_int = {}, {}
    str_map = make_object_on(block, key_type_probe, None).deref()
    num_map = make_object_on(block, int_map, None).deref()
    for key, value in operations:
        if isinstance(key, str):
            str_map.put(key, value)
            model_str[key] = value
        else:
            num_map.put(key, value)
            model_int[key] = value
    assert dict(str_map.items()) == model_str
    assert dict(num_map.items()) == model_int
    assert len(str_map) == len(model_str)
    for key in model_int:
        assert num_map[key] == model_int[key]
        assert key in num_map


class Packet(PCObject):
    fields = [
        ("tag", Int64),
        ("note", String),
        ("values", VectorType(Float64)),
    ]


packets = st.tuples(
    st.integers(-2**40, 2**40),
    st.text(max_size=16),
    st.lists(floats, max_size=10),
)


def _build(block, spec):
    tag, note, values = spec
    return make_object_on(block, Packet, tag=tag, note=note,
                          values=[float(v) for v in values])


def _read(handle):
    view = handle.deref()
    return (view.tag, view.note, view.values.to_list())


@settings(max_examples=50, deadline=None)
@given(st.lists(packets, min_size=1, max_size=20))
def test_zero_cost_movement_preserves_every_object(specs):
    block = AllocationBlock(_BLOCK_SIZE)
    root = make_object_on(block, VectorType(Packet), None)
    vector = root.deref()
    for spec in specs:
        handle = _build(block, spec)
        vector.append(handle)
        handle.release()
    block.set_root(root.offset, root.type_code)

    arrived = AllocationBlock.from_bytes(block.to_bytes())
    offset, code = arrived.root()
    moved = Handle(arrived, offset, code).deref()
    assert len(moved) == len(specs)
    for index, spec in enumerate(specs):
        tag, note, values = spec
        assert _read(moved[index].handle() if hasattr(moved[index], "handle")
                     else moved[index]) == (
            tag, note, [float(v) for v in values]
        )


@settings(max_examples=50, deadline=None)
@given(packets)
def test_cross_block_deep_copy_isolates(spec):
    source = AllocationBlock(_BLOCK_SIZE)
    target = AllocationBlock(_BLOCK_SIZE)
    original = _build(source, spec)
    holder = make_object_on(target, VectorType(Packet), None)
    holder.deref().append(original)  # foreign handle -> deep copy
    copy = holder.deref()[0]
    assert _read(copy) == _read(original)
    # Mutating the copy must not leak back to the source block.
    copy.deref().tag = 999_999
    copy.deref().values.append(123.0)
    assert original.deref().tag == spec[0]
    assert len(original.deref().values) == len(spec[2])
    assert copy.block is target


@settings(max_examples=30, deadline=None)
@given(
    st.lists(packets, min_size=1, max_size=15),
    st.sampled_from([LIGHTWEIGHT_REUSE, NO_REUSE, RECYCLING]),
)
def test_release_all_empties_block_under_every_policy(specs, policy):
    block = AllocationBlock(_BLOCK_SIZE, policy=policy)
    handles = [_build(block, spec) for spec in specs]
    assert block.active_objects > 0
    for handle in handles:
        handle.release()
    assert block.active_objects == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(keys, st.integers(0, 10**6)), min_size=1,
                max_size=40))
def test_map_survives_page_movement(entries):
    block = AllocationBlock(_BLOCK_SIZE)
    map_type = MapType(String, Int64)
    handle = make_object_on(block, map_type, None)
    view = handle.deref()
    model = {}
    for key, value in entries:
        key = str(key)
        view.put(key, value)
        model[key] = value
    block.set_root(handle.offset, handle.type_code)
    arrived = AllocationBlock.from_bytes(block.to_bytes())
    offset, _code = arrived.root()
    moved = map_type.facade(arrived, offset)
    assert dict(moved.items()) == model
