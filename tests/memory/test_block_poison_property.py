"""Property test: allocate/free/reuse round-trips under PCSan poisoning.

Whatever interleaving of allocations and frees a block sees, and under
every allocator policy:

* every surviving handle reads back exactly the payload it stored
  (0xDD poison from earlier frees never leaks into a reallocated
  object's bytes);
* the allocator never trips its own poison check (no wild writes mean
  no ``poison_violation`` findings);
* freed-then-reallocated chunks are indistinguishable from fresh ones
  to their new handles, while every stale handle fails deref loudly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.analysis.sanitizer import POISON_BYTE, sanitize_scope
from repro.errors import DanglingHandleError
from repro.memory import (
    LIGHTWEIGHT_REUSE,
    NO_REUSE,
    RECYCLING,
    AllocationBlock,
    String,
    make_object_on,
)

_BLOCK_SIZE = 1 << 20

# An operation is (alloc?, victim-picker, payload-size).  Sizes cluster
# around small strings so freelist buckets actually get reused.
ops_strategy = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=1023),
        st.integers(min_value=1, max_value=96),
    ),
    min_size=1, max_size=60,
)

policies = st.sampled_from([LIGHTWEIGHT_REUSE, NO_REUSE, RECYCLING])


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy, policy=policies)
def test_poison_never_leaks_into_live_payloads(ops, policy):
    with sanitize_scope() as san:
        block = AllocationBlock(_BLOCK_SIZE, policy=policy)
        live = {}    # serial -> (handle, expected payload)
        stale = []   # handles whose objects were freed
        serial = 0
        for is_alloc, pick, size in ops:
            if is_alloc or not live:
                serial += 1
                payload = chr(ord("a") + serial % 26) * size
                handle = make_object_on(block, String, payload)
                live[serial] = (handle, payload)
            else:
                key = sorted(live)[pick % len(live)]
                handle, _payload = live.pop(key)
                block.free_object(handle.offset)
                stale.append(handle)

        # Live objects read back exactly what they stored: reused chunks
        # carry no poison residue and no cross-object bleed.
        poison_char = chr(POISON_BYTE)
        for handle, payload in live.values():
            value = handle.deref()
            assert value == payload
            assert poison_char not in value

        # Nothing scribbled on freed space, per the allocator itself.
        assert san.report.by_kind("poison_violation") == []

        # Every stale handle fails loudly rather than reading residue.
        for handle in stale:
            with pytest.raises(DanglingHandleError):
                handle.deref()
