"""PCSan runtime sanitizer: poisoning, generations, pin leaks, reports.

The central claims under test: a sanitized run catches an injected
use-after-free and a buffer-pool pin leak that plain mode silently
misses, and a healthy sanitized workload behaves identically to a plain
one (tier-1 itself runs under ``PC_SANITIZE=1`` in CI to prove the
latter at scale).
"""

import pytest

from repro.analysis import sanitizer as pcsan
from repro.analysis.sanitizer import POISON_BYTE, POISON_SKIP, sanitize_scope
from repro.cluster import PCCluster
from repro.core import ObjectReader, Writer, lambda_from_member
from repro.core.computation import SelectionComp
from repro.errors import DanglingHandleError
from repro.memory import (
    AllocationBlock,
    Float64,
    Int32,
    LIGHTWEIGHT_REUSE,
    PCObject,
    String,
    make_object_on,
)
from repro.memory import layout
from repro.obs import MetricsRegistry
from repro.storage.buffer_pool import BufferPool


@pytest.fixture(autouse=True)
def _restore_global_sanitizer_state():
    """Every test leaves the process-wide switch exactly as it found it."""
    saved = (pcsan._state["san"], pcsan._state["initialized"])
    yield
    pcsan._state["san"], pcsan._state["initialized"] = saved


def plain_mode():
    """Force the sanitizer off regardless of PC_SANITIZE (tier-1 runs
    this whole suite under the env flag in CI; 'plain mode misses it'
    tests must stay plain there too)."""
    pcsan.disable()


BLOCK_SIZE = 1 << 16
PAYLOAD = "x" * 64  # big enough for a comfortable poison range


# -- poisoned frees ----------------------------------------------------------


def test_free_object_poisons_payload():
    with sanitize_scope() as san:
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        handle = make_object_on(block, String, PAYLOAD)
        offset = handle.offset
        _refcount, _code, size = handle.header()
        block.free_object(offset)
        start = offset + POISON_SKIP
        end = offset + layout.OBJECT_HEADER_SIZE + size
        assert end > start
        assert all(b == POISON_BYTE for b in block.buf[start:end])
        assert san.c_poisoned_frees.value == 1


def test_plain_mode_does_not_poison():
    plain_mode()
    block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
    assert block._san is None
    handle = make_object_on(block, String, PAYLOAD)
    offset = handle.offset
    block.free_object(offset)
    start = offset + POISON_SKIP
    assert any(b != POISON_BYTE for b in block.buf[start:start + 32])


def test_scribble_on_freed_chunk_is_reported_at_reuse():
    with sanitize_scope() as san:
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        handle = make_object_on(block, String, PAYLOAD)
        offset = handle.offset
        block.free_object(offset)
        block.buf[offset + POISON_SKIP + 4] = 0x00  # the wild write
        reused = make_object_on(block, String, PAYLOAD)
        assert reused.offset == offset  # freelist really reused the chunk
        violations = san.report.by_kind("poison_violation")
        assert len(violations) == 1
        assert san.c_poison_violations.value == 1


# -- use-after-free via generations ------------------------------------------


def _use_after_free(block):
    """Free a string's chunk, then reallocate it with different bytes.

    Returns the stale handle and the fresh one; after this the on-page
    header at the shared offset looks perfectly healthy again, so the
    tombstone check in ``Handle.deref`` cannot see the bug.
    """
    stale = make_object_on(block, String, "old-old-old-old!")
    offset = stale.offset
    block.free_object(offset)
    fresh = make_object_on(block, String, "new-new-new-new!")
    assert fresh.offset == offset
    return stale, fresh


def test_plain_mode_misses_realloc_use_after_free():
    plain_mode()
    block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
    stale, _fresh = _use_after_free(block)
    # No error — the stale handle silently reads the *wrong object*.
    assert stale.deref() == "new-new-new-new!"


def test_sanitizer_catches_realloc_use_after_free():
    with sanitize_scope() as san:
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        stale, fresh = _use_after_free(block)
        with pytest.raises(DanglingHandleError):
            stale.deref()
        assert san.c_dangling_derefs.value == 1
        # The fresh handle, stamped with the current generation, is fine.
        assert fresh.deref() == "new-new-new-new!"


def test_handle_into_freed_page_raises_when_sanitized():
    with sanitize_scope() as san:
        pool = BufferPool(1 << 20, page_size=BLOCK_SIZE)
        page = pool.new_page()
        handle = make_object_on(page.block, String, PAYLOAD)
        pool.unpin(page.page_id)
        pool.free_page(page.page_id)
        with pytest.raises(DanglingHandleError):
            handle.deref()
        assert san.c_dangling_derefs.value == 1


def test_handle_into_freed_page_reads_stale_bytes_in_plain_mode():
    plain_mode()
    pool = BufferPool(1 << 20, page_size=BLOCK_SIZE)
    page = pool.new_page()
    handle = make_object_on(page.block, String, PAYLOAD)
    pool.unpin(page.page_id)
    pool.free_page(page.page_id)
    assert handle.deref() == PAYLOAD  # silently reads the dead page


# -- shadow refcounts --------------------------------------------------------


def test_raw_refcount_poke_is_reported():
    with sanitize_scope() as san:
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        handle = make_object_on(block, String, PAYLOAD)
        layout.write_refcount(block.buf, handle.offset, 5)  # the poke
        block.retain(handle.offset)
        mismatches = san.report.by_kind("refcount_mismatch")
        assert len(mismatches) == 1
        assert "raw header write" in mismatches[0].message
        assert san.c_refcount_mismatches.value == 1


def test_counted_lifecycle_has_no_findings():
    with sanitize_scope() as san:
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        handle = make_object_on(block, String, PAYLOAD)
        copy = handle.copy()
        assert copy.deref() == PAYLOAD
        copy.release()
        handle.release()
        assert san.report.by_kind("refcount_mismatch") == []
        assert san.report.by_kind("poison_violation") == []


# -- seal-time leak check ----------------------------------------------------


def test_seal_with_rootless_live_objects_is_reported_once():
    with sanitize_scope() as san:
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        make_object_on(block, String, PAYLOAD)  # live, refcounted, no root
        block.to_bytes()
        block.to_bytes()  # a respill must not double-report
        leaks = san.report.by_kind("leaked_objects")
        assert len(leaks) == 1
        assert san.c_leaked_objects.value == 1


def test_seal_with_root_is_clean():
    with sanitize_scope() as san:
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        handle = make_object_on(block, String, PAYLOAD)
        block.set_root(handle.offset, handle.type_code)
        block.to_bytes()
        assert san.report.by_kind("leaked_objects") == []


# -- pin-leak detection ------------------------------------------------------


def test_pin_leak_found_by_snapshot_diff():
    with sanitize_scope() as san:
        pool = BufferPool(1 << 20, page_size=BLOCK_SIZE)
        held = pool.new_page()  # pinned before the "job": in the baseline
        baseline = san.snapshot_pins([pool])
        leaked = pool.new_page()  # pinned during the "job", never unpinned
        balanced = pool.new_page()
        pool.unpin(balanced.page_id)
        found = san.check_pins([pool], baseline)
        assert [f.page_id for f in found] == [leaked.page_id]
        assert held.page_id not in [f.page_id for f in found]
        assert san.c_pin_leaks.value == 1


# -- cluster integration -----------------------------------------------------


class _Point(PCObject):
    fields = [("pid", Int32), ("x", Float64)]


class _HighX(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_member(arg, "x") > 10.0

    def get_projection(self, arg):
        from repro.core.lambdas import lambda_from_self

        return lambda_from_self(arg)


def _load_points(cluster):
    cluster.create_database("db")
    cluster.create_set("db", "points", _Point)
    with cluster.loader("db", "points") as load:
        for i in range(40):
            load.append(_Point, pid=i, x=float(i))


def _run_job(cluster):
    reader = ObjectReader("db", "points")
    writer = Writer("db", "high").set_input(_HighX().set_input(reader))
    cluster.execute_computations(writer)
    return sorted(h.pid for h in cluster.read("db", "high"))


def _run_selection_job(cluster):
    _load_points(cluster)
    return _run_job(cluster)


def test_sanitized_cluster_job_runs_clean(tmp_path):
    cluster = PCCluster(n_workers=2, page_size=1 << 12,
                        spill_root=str(tmp_path), sanitize=True)
    assert cluster.sanitizer is pcsan.current_sanitizer()
    assert _run_selection_job(cluster) == list(range(11, 40))
    report = cluster.sanitizer.report
    assert report.by_kind("pin_leak") == []
    assert report.by_kind("refcount_mismatch") == []
    assert report.by_kind("poison_violation") == []
    # Blocks really were watched, through the cluster's own registry.
    snapshot = cluster.metrics_registry.snapshot()
    assert snapshot.value("pc_san_blocks_watched_total") > 0


def _leak_one_unpin(pool):
    """Wrap ``pool.unpin`` to silently drop its first call — the
    injected bug: some stage forgets to unpin a page it pinned."""
    original = pool.unpin
    dropped = []

    def leaky_unpin(page_id, dirty=False):
        if not dropped:
            dropped.append(page_id)
            return None
        return original(page_id, dirty=dirty)

    pool.unpin = leaky_unpin
    return dropped


def test_sanitized_cluster_catches_injected_pin_leak(tmp_path):
    cluster = PCCluster(n_workers=2, page_size=1 << 12,
                        spill_root=str(tmp_path), sanitize=True)
    _load_points(cluster)
    # Inject the bug after loading so the leak happens *inside* the job.
    dropped = _leak_one_unpin(cluster.workers[0].storage.pool)
    _run_job(cluster)
    assert dropped  # the bug really triggered
    leaks = cluster.sanitizer.report.by_kind("pin_leak")
    assert len(leaks) >= 1
    snapshot = cluster.metrics_registry.snapshot()
    assert snapshot.value("pc_san_pin_leaks_total") >= 1


def test_plain_cluster_misses_injected_pin_leak(tmp_path):
    plain_mode()
    cluster = PCCluster(n_workers=2, page_size=1 << 12,
                        spill_root=str(tmp_path))
    assert cluster.sanitizer is None
    _load_points(cluster)
    dropped = _leak_one_unpin(cluster.workers[0].storage.pool)
    assert _run_job(cluster) == list(range(11, 40))
    assert dropped  # same bug, same workload — and nothing noticed it


# -- switches, metrics, report shape ----------------------------------------


def test_env_variable_enables_on_first_touch(monkeypatch):
    monkeypatch.setenv("PC_SANITIZE", "1")
    pcsan._state["san"] = None
    pcsan._state["initialized"] = False
    san = pcsan.current_sanitizer()
    assert san is not None
    block = AllocationBlock(BLOCK_SIZE)
    assert block._san is not None
    assert san.c_blocks_watched.value == 1


def test_disabled_by_default_installs_nothing(monkeypatch):
    monkeypatch.delenv("PC_SANITIZE", raising=False)
    pcsan._state["san"] = None
    pcsan._state["initialized"] = False
    assert pcsan.current_sanitizer() is None
    assert AllocationBlock(BLOCK_SIZE)._san is None


def test_counters_surface_through_obs_with_trace_mirrors():
    registry = MetricsRegistry()
    with sanitize_scope(metrics=registry):
        block = AllocationBlock(BLOCK_SIZE, policy=LIGHTWEIGHT_REUSE)
        handle = make_object_on(block, String, PAYLOAD)
        block.free_object(handle.offset)
    snapshot = registry.snapshot()
    assert snapshot.value("pc_san_blocks_watched_total") == 1
    assert snapshot.value("pc_san_poisoned_frees_total") == 1
    derived = registry.stats_view("san.")
    assert derived["blocks_watched"] == 1
    assert derived["poisoned_frees"] == 1
    assert "pc_san_poisoned_frees_total 1" in \
        registry.snapshot().to_prometheus()


def test_report_structure():
    with sanitize_scope() as san:
        san.record("poison_violation", "msg-a", block_id=7, offset=40)
        san.record("pin_leak", "msg-b", page_id=3)
        report = san.report
        assert len(report) == 2
        assert report.counts() == {"poison_violation": 1, "pin_leak": 1}
        payload = report.to_dict()
        assert payload["counts"] == report.counts()
        assert payload["findings"][0] == {
            "kind": "poison_violation", "message": "msg-a",
            "block_id": 7, "offset": 40,
        }
