"""PC006 fixture: row-path handle access inside columnar kernel scopes."""


def bad_named_kernel(rows):
    # A kernel passed by name below: derefs a handle per row.
    return [h.deref().x for h in rows]  # fires (deref in kernel def)


def make_terms(arg, lambda_from_native):
    good = lambda_from_native(
        [arg], lambda p: p.x * 2.0,
        kernel=lambda rows: rows.column("x") * 2.0,  # clean: array code
    )
    bad_inline = lambda_from_native(
        [arg], lambda p: p.x,
        kernel=lambda rows: rows.facade(0).x,  # fires (facade in kernel)
    )
    bad_named = lambda_from_native([arg], lambda p: p.x,
                                   kernel=bad_named_kernel)
    return good, bad_inline, bad_named


def row_path_elsewhere(handle):
    # Outside any kernel scope: deref is the object path's daily bread.
    return handle.deref()
