"""Fixture: every PC001 pattern — handles escaping their block's scope."""

from repro.memory import make_object, make_object_on, use_allocation_block

GLOBAL_HANDLE = make_object(Employee, name="stashed")  # fires: module level


class HandleCache:
    def __init__(self, block):
        # fires: instance state outlives the allocation block
        self.cached = make_object_on(block, Employee, name="cached")


def build_and_leak():
    with use_allocation_block(1 << 20) as block:
        handle = make_object_on(block, Employee, name="leaky")
        return handle  # fires: block scope ends at the `with`


def leak_directly():
    with use_allocation_block(1 << 20):
        return make_object(Employee, name="direct")  # fires
