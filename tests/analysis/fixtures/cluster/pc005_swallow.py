"""Fixture: PC005 — exception-swallowing except blocks in cluster code."""


def swallow_pass(worker):
    try:
        worker.ping()
    except ConnectionError:
        pass  # fires


def swallow_continue(workers):
    for worker in workers:
        try:
            worker.ping()
        except ConnectionError:
            continue  # fires


def swallow_return(worker):
    try:
        return worker.ping()
    except ConnectionError:
        return None  # fires


def counted_is_fine(worker, metrics):
    try:
        worker.ping()
    except ConnectionError:
        metrics.ping_failures.inc()  # must NOT fire: failure is counted
