"""Fixture: one violation of each rule, each silenced by a suppression."""

from repro.memory import make_object, use_allocation_block
from repro.core.lambdas import lambda_from_native

GLOBAL_HANDLE = make_object(Employee)  # pcsan: disable=PC001


def read_buf(block):
    return block.buf[0]  # pcsan: disable=PC002


def noisy(arg):
    return lambda_from_native([arg], lambda v: print(v))  # pcsan: disable=PC003


def declare(metrics):
    return metrics.counter(  # pcsan: disable=PC004
        "pc_pool_quiet_total", help="No mirror, on purpose",
    )


def probe(worker):
    try:
        worker.ping()
    except ConnectionError:  # pcsan: disable=PC005
        pass
