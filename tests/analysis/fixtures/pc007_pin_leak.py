"""Fixture: PC007 — pin/retain unreleased on some path to exit."""


def reload_with_early_return(pool, page_id, cache):
    page = pool.pin(page_id)  # fires: the early return skips the unpin
    if page_id in cache:
        return cache[page_id]
    data = bytes(page.payload)
    pool.unpin(page_id)
    return data


def copy_retained(block, handle):
    block.retain(handle)  # fires: serialize() can raise before release
    data = block.serialize(handle)
    block.release(handle)
    return data


def reload_clean(pool, page_id):
    page = pool.pin(page_id)  # clean: the finally runs on every path
    try:
        return bytes(page.payload)
    finally:
        pool.unpin(page_id)


def pin_for_caller(pool, page_id):
    page = pool.pin(page_id)  # clean: ownership transfers to the caller
    return page


def suppressed_leak(pool, cache, key):
    page = pool.pin(  # the comment may sit on any line of the statement
        cache[key],
    )  # pcsan: disable=PC007
    if page is None:
        return None
    pool.unpin(cache[key])
    return True
