"""Fixture: PC003 — impure lambdas handed to lambda_from_native."""

from repro.core.lambdas import Arg, lambda_from_native

seen = []


def printing_projection(arg):
    # fires: print() is I/O
    return lambda_from_native([arg], lambda v: print(v) or v.salary)


def nondeterministic_selection(arg):
    # fires: random breaks replay and optimizer rewrites
    return lambda_from_native([arg], lambda v: v.salary > random.random())


def mutating_closure(arg):
    # fires: appends to closed-over state
    return lambda_from_native([arg], lambda v: seen.append(v) or True)


def pure_is_fine(arg):
    # must NOT fire: pure arithmetic over the argument
    return lambda_from_native([arg], lambda v: v.salary * 2 + 1)


def param_mutation_is_fine(arg):
    # must NOT fire: mutating the lambda's own parameter is local
    return lambda_from_native([arg], lambda acc: acc.update({}) or acc)
