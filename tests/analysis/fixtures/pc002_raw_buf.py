"""Fixture: PC002 — raw block.buf byte access outside the memory layer."""


def peek_byte(block, offset):
    return block.buf[offset]  # fires: subscript on .buf


def poke_header(block, offset):
    block.buf[offset:offset + 8] = b"\x00" * 8  # fires: raw write


def alias_the_buffer(page):
    buf = page.block.buf  # fires: aliasing is the same escape
    return buf[0:16]  # fires: subscript through the alias


def getattr_dodge(block):
    return getattr(block, "buf")  # fires: getattr() is the same access


def unpack_dodge(page, x):
    a, b = page.buf, x  # fires: .buf read inside the unpacking
    return a[0], b  # fires: subscript through the unpacked alias


def multiline_suppressed(block):
    return getattr(
        block,
        "buf",  # pcsan: disable=PC002
    )
