"""Fixture: PC002 — raw block.buf byte access outside the memory layer."""


def peek_byte(block, offset):
    return block.buf[offset]  # fires: subscript on .buf


def poke_header(block, offset):
    block.buf[offset:offset + 8] = b"\x00" * 8  # fires: raw write


def alias_the_buffer(page):
    buf = page.block.buf  # fires: aliasing is the same escape
    return buf[0:16]
