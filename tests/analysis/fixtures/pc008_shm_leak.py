"""Fixture: PC008 — shm handle not closed/unlinked on every path."""

from multiprocessing.shared_memory import SharedMemory

from repro.storage.shm_registry import ShmRegistry


def attach_segment(name, ready):
    shm = SharedMemory(name=name)  # fires: only closed when ready
    if ready:
        shm.close()
    return None


def poke_registry(path):
    ShmRegistry(path)  # fires: dropped on the floor, nothing can close it


def scratch_segment(name, nbytes):
    shm = SharedMemory(name=name, create=True, size=nbytes)  # clean
    try:
        return shm.size
    finally:
        shm.close()


def sized_segment(name):
    with SharedMemory(name=name) as shm:  # clean: the with-block closes it
        return shm.size


def adopt_segment(registry, name):
    shm = SharedMemory(name=name)  # clean: ownership handed to the registry
    registry.adopt(shm)


def suppressed_segment(name):
    shm = SharedMemory(name=name)  # pcsan: disable=PC008
    return shm.size
