"""Fixture: PC009 — page payload written after seal()/to_bytes()."""


def ship_page(page, header):
    page.seal()
    page.write_header(header)  # fires: the bytes already shipped


def maybe_seal_then_store(block, data, early):
    if early:
        block.seal()
    block.payload[0:4] = data  # fires: sealed on the early path


def recycle(pool, data):
    page = pool.fresh()
    page.seal()
    page = pool.fresh()  # clean: rebinding makes a fresh, unsealed page
    page.write_bytes(data)
    return page


def write_then_seal(page, data):
    page.write_bytes(data)  # clean: the write happens before the seal
    return page.to_bytes()


def suppressed_write(page, header):
    page.seal()
    page.write_header(header)  # pcsan: disable=PC009
