"""Fixture: PC004 — mirrored-family counter without its trace= mirror."""


class PoolCounters:
    def __init__(self, metrics):
        self.hits = metrics.counter(
            "pc_pool_probe_hits_total",
            help="Probe hits",
        )  # fires: pc_pool_* family, no trace=
        self.misses = metrics.counter(
            "pc_pool_probe_misses_total",
            help="Probe misses",
            trace="pool.probe_misses",
        )  # must NOT fire: mirror declared
        self.other = metrics.counter(
            "pc_custom_thing_total",
            help="Outside the mirrored families",
        )  # must NOT fire: not a mirrored family
