"""The CFG engine: structure of branch/loop/try edges, and the
every-statement-in-exactly-one-block invariant, property-tested over
randomly generated function bodies."""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import (
    EDGE_EXCEPT,
    build_cfg,
    may_raise,
)
from repro.analysis.flowrules import _local_stmts


def cfg_of(source):
    tree = ast.parse(source)
    return tree.body[0], build_cfg(tree.body[0])


def block_of(cfg, needle):
    """The single block whose statements include source text ``needle``.

    Only a statement's header line counts — a compound statement's
    ``unparse`` includes its whole suite, but its suite lives in other
    blocks.
    """
    found = [
        block for block in cfg.blocks.values()
        if any(
            needle in ast.unparse(s).splitlines()[0]
            for s in block.statements
        )
    ]
    assert len(found) == 1, "%r in %d blocks" % (needle, len(found))
    return found[0]


def can_reach(cfg, source_id, target_id):
    seen, stack = set(), [source_id]
    while stack:
        block_id = stack.pop()
        if block_id == target_id:
            return True
        if block_id in seen:
            continue
        seen.add(block_id)
        stack.extend(cfg.blocks[block_id].successors())
    return False


# -- structure ----------------------------------------------------------------


def test_if_else_branches_rejoin():
    _func, cfg = cfg_of(
        "def f(c):\n"
        "    if c:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    )
    then_block = block_of(cfg, "a = 1")
    else_block = block_of(cfg, "a = 2")
    ret_block = block_of(cfg, "return a")
    for branch in (then_block, else_block):
        assert can_reach(cfg, branch.block_id, ret_block.block_id)
    assert ret_block.successors() == [cfg.exit]


def test_loop_has_back_edge_and_exit():
    _func, cfg = cfg_of(
        "def f(xs):\n"
        "    for x in xs:\n"
        "        use(x)\n"
        "    return None\n"
    )
    header = block_of(cfg, "for x in xs")
    body = block_of(cfg, "use(x)")
    assert can_reach(cfg, body.block_id, header.block_id)  # back edge
    assert can_reach(cfg, header.block_id, cfg.exit)


def test_break_skips_loop_else():
    _func, cfg = cfg_of(
        "def f(xs):\n"
        "    while xs:\n"
        "        break\n"
        "    else:\n"
        "        fallback()\n"
        "    done()\n"
    )
    brk = block_of(cfg, "break")
    orelse = block_of(cfg, "fallback()")
    done = block_of(cfg, "done()")
    assert can_reach(cfg, brk.block_id, done.block_id)
    assert not can_reach(cfg, brk.block_id, orelse.block_id)


def test_call_statement_gets_exception_edge_and_ends_block():
    _func, cfg = cfg_of(
        "def f(page):\n"
        "    data = page.to_bytes()\n"
        "    tail = 1\n"
    )
    call_block = block_of(cfg, "page.to_bytes()")
    # The may-raise statement seals its block (so the dataflow engine
    # can give its exception edge a different transfer)...
    assert may_raise(call_block.statements[-1])
    assert "to_bytes" in ast.unparse(call_block.statements[-1])
    kinds = {kind for _t, kind in call_block.edges}
    assert EDGE_EXCEPT in kinds
    targets = dict((kind, t) for t, kind in call_block.edges)
    assert targets[EDGE_EXCEPT] == cfg.raises
    # ...and the next statement lives in the fall-through block.
    assert block_of(cfg, "tail = 1").block_id != call_block.block_id


def test_try_except_routes_body_exceptions_to_handler():
    _func, cfg = cfg_of(
        "def f(pool, i):\n"
        "    try:\n"
        "        page = pool.pin(i)\n"
        "    except KeyError:\n"
        "        recover()\n"
        "    return None\n"
    )
    pin = block_of(cfg, "pool.pin(i)")
    handler = block_of(cfg, "recover()")
    assert can_reach(cfg, pin.block_id, handler.block_id)
    assert can_reach(cfg, handler.block_id, cfg.exit)


def test_finally_runs_on_return_and_exception_paths():
    _func, cfg = cfg_of(
        "def f(pool, i):\n"
        "    page = pool.pin(i)\n"
        "    try:\n"
        "        return work(page)\n"
        "    finally:\n"
        "        pool.unpin(i)\n"
    )
    work = block_of(cfg, "work(page)")
    fin = block_of(cfg, "pool.unpin(i)")
    # Both leaving normally (return) and raising route through finally...
    assert all(
        can_reach(cfg, target, fin.block_id)
        for target, _kind in work.edges
    )
    # ...and the finally's exit fans out to both continuations.
    assert can_reach(cfg, fin.block_id, cfg.exit)
    assert can_reach(cfg, fin.block_id, cfg.raises)


def test_handler_exception_still_runs_finally():
    _func, cfg = cfg_of(
        "def f(res):\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        rethrow()\n"
        "    finally:\n"
        "        res.close()\n"
    )
    handler = block_of(cfg, "rethrow()")
    fin = block_of(cfg, "res.close()")
    except_targets = [
        target for target, kind in handler.edges if kind == EDGE_EXCEPT
    ]
    assert except_targets
    assert all(
        can_reach(cfg, target, fin.block_id) for target in except_targets
    )


def test_dead_code_is_parked_in_unreachable_block():
    _func, cfg = cfg_of(
        "def f():\n"
        "    return 1\n"
        "    unreachable()\n"
    )
    dead = block_of(cfg, "unreachable()")
    assert dead.block_id not in cfg.reachable()


def test_nested_defs_are_opaque():
    func, cfg = cfg_of(
        "def f():\n"
        "    def inner():\n"
        "        return risky()\n"
        "    return inner\n"
    )
    inner = func.body[0]
    assert not may_raise(inner)  # defining a function cannot raise
    # The inner body's statements belong to inner's own CFG, not f's.
    recorded = cfg.statements()
    assert inner in recorded
    assert inner.body[0] not in recorded


# -- the coverage invariant, property-tested ----------------------------------

_SIMPLE = (
    "x = f()", "y = 1", "g(x)", "x += 1", "pass",
    "return x", "raise ValueError('boom')", "assert x", "del y",
)


def _leaf():
    return st.sampled_from([("simple", text) for text in _SIMPLE] +
                           [("loopjump", "break"), ("loopjump", "continue")])


def _node(children):
    suites = st.lists(children, min_size=1, max_size=3)
    optional = st.lists(children, min_size=0, max_size=2)
    return st.one_of(
        st.tuples(st.just("if"), suites, optional),
        st.tuples(st.just("while"), suites, optional),
        st.tuples(st.just("for"), suites, optional),
        st.tuples(st.just("with"), suites),
        st.tuples(st.just("try"), suites, suites, optional),
    )


_STMTS = st.recursive(_leaf(), _node, max_leaves=16)
_BODIES = st.lists(_STMTS, min_size=1, max_size=5)


def _render(node, indent, in_loop, lines):
    pad = "    " * indent
    kind = node[0]
    if kind == "simple":
        lines.append(pad + node[1])
    elif kind == "loopjump":
        lines.append(pad + (node[1] if in_loop else "pass"))
    elif kind == "if":
        lines.append(pad + "if cond:")
        _render_suite(node[1], indent + 1, in_loop, lines)
        if node[2]:
            lines.append(pad + "else:")
            _render_suite(node[2], indent + 1, in_loop, lines)
    elif kind in ("while", "for"):
        lines.append(pad + ("while cond:" if kind == "while"
                            else "for item in seq():"))
        _render_suite(node[1], indent + 1, True, lines)
        if node[2]:
            lines.append(pad + "else:")
            _render_suite(node[2], indent + 1, in_loop, lines)
    elif kind == "with":
        lines.append(pad + "with ctx() as handle:")
        _render_suite(node[1], indent + 1, in_loop, lines)
    elif kind == "try":
        lines.append(pad + "try:")
        _render_suite(node[1], indent + 1, in_loop, lines)
        lines.append(pad + "except RuntimeError:")
        _render_suite(node[2], indent + 1, in_loop, lines)
        if node[3]:
            lines.append(pad + "finally:")
            _render_suite(node[3], indent + 1, in_loop, lines)


def _render_suite(suite, indent, in_loop, lines):
    for node in suite:
        _render(node, indent, in_loop, lines)


@settings(max_examples=150, deadline=None)
@given(body=_BODIES)
def test_every_statement_lands_in_exactly_one_block(body):
    lines = ["def f(x, y):"]
    _render_suite(body, 1, False, lines)
    source = "\n".join(lines) + "\n"
    func = ast.parse(source).body[0]
    cfg = build_cfg(func)
    recorded = cfg.statements()
    # no statement is recorded twice...
    assert len(recorded) == len({id(s) for s in recorded})
    # ...and every local statement is recorded exactly once (``try``
    # is pure structure — its pieces all land in blocks of their own).
    expected = {
        id(s) for s in _local_stmts(func) if not isinstance(s, ast.Try)
    }
    assert {id(s) for s in recorded} == expected
    # every edge points at a real block, and the graph stays finite
    for block in cfg.blocks.values():
        for target, _kind in block.edges:
            assert target in cfg.blocks
    assert cfg.reachable() <= set(cfg.blocks)
