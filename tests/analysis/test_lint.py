"""The pcsan lint pass: every rule fires on its fixture, suppressions
silence them, and the repo itself is PC-rule-clean."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import iter_rules, run_lint
from repro.analysis.lint import format_json, format_text, lint_source

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC = os.path.join(REPO_ROOT, "src")


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def codes_in(path, select=None):
    return [f.code for f in run_lint([path], select=select)]


# -- each rule fires on its fixture ------------------------------------------


def test_pc001_fires_on_every_escape_pattern():
    findings = run_lint([fixture("pc001_handle_escape.py")])
    assert [f.code for f in findings] == ["PC001"] * 4
    messages = " ".join(f.message for f in findings)
    assert "instance state" in messages
    assert "module level" in messages
    assert "returned from inside" in messages


def test_pc002_fires_on_subscript_write_and_alias():
    findings = run_lint([fixture("pc002_raw_buf.py")])
    assert [f.code for f in findings] == ["PC002"] * 7
    messages = " ".join(f.message for f in findings)
    assert "getattr()" in messages  # the getattr(block, "buf") dodge
    assert "alias" in messages  # subscripts through unpacked aliases


def test_pc003_fires_only_on_impure_lambdas():
    findings = run_lint([fixture("pc003_impure_lambda.py")])
    assert [f.code for f in findings] == ["PC003"] * 3
    reasons = " ".join(f.message for f in findings)
    assert "print" in reasons
    assert "random" in reasons
    assert "seen" in reasons  # the mutated closure name


def test_pc004_fires_only_on_mirrorless_family_counter():
    findings = run_lint([fixture("pc004_counter_no_trace.py")])
    assert len(findings) == 1
    assert findings[0].code == "PC004"
    assert "pc_pool_probe_hits_total" in findings[0].message


def test_pc005_fires_on_swallowing_excepts_only():
    findings = run_lint([fixture("cluster", "pc005_swallow.py")])
    assert [f.code for f in findings] == ["PC005"] * 3


def test_pc006_fires_in_kernel_scopes_only():
    findings = run_lint([fixture("pc006_kernel_deref.py")])
    assert [f.code for f in findings] == ["PC006"] * 2
    messages = " ".join(f.message for f in findings)
    assert "deref" in messages and "facade" in messages


def test_pc006_covers_the_kernel_library_module():
    source = "def apply_kernel(batch):\n    return batch.deref()\n"
    assert [
        f.code for f in lint_source(source, "repro/engine/kernels.py")
    ] == ["PC006"]
    assert lint_source(source, "repro/engine/pipeline.py") == []


def test_pc005_is_scoped_to_cluster_paths():
    source = "try:\n    ping()\nexcept ValueError:\n    pass\n"
    assert lint_source(source, "repro/cluster/foo.py") != []
    assert lint_source(source, "repro/engine/foo.py") == []


# -- suppressions -------------------------------------------------------------


def test_suppression_comment_silences_each_rule():
    assert run_lint([fixture("cluster", "suppressed.py")]) == []


def test_suppression_honors_multiline_statement_span():
    # The comment sits on a continuation line, not the line the finding
    # anchors at — the full lineno..end_lineno span must be honored.
    source = (
        "def peek(block):\n"
        "    return getattr(\n"
        "        block,\n"
        '        "buf",  # pcsan: disable=PC002\n'
        "    )\n"
    )
    assert lint_source(source, "repro/engine/foo.py") == []


def test_suppression_on_multiline_lambda():
    # PC003 anchors at the lambda, which itself wraps onto the next
    # line — the comment on the continuation line must count.
    source = (
        "def mk(arg):\n"
        "    return lambda_from_native(\n"
        "        [arg],\n"
        "        lambda v:\n"
        "            print(v),  # pcsan: disable=PC003\n"
        "    )\n"
    )
    assert lint_source(source, "repro/core/foo.py") == []


def test_span_of_includes_decorator_lines():
    import ast

    from repro.analysis.lint import span_of

    tree = ast.parse("@deco(\n    1,\n)\ndef f():\n    pass\n")
    assert span_of(tree.body[0]) == (1, 5)


def test_unrelated_suppression_does_not_silence():
    source = "x = block.buf[0]  # pcsan: disable=PC001\n"
    findings = lint_source(source, "repro/engine/foo.py")
    assert [f.code for f in findings] == ["PC002"]


# -- the fixture tree as a whole, and the repo -------------------------------


def test_pc007_fires_on_leaky_paths_only():
    findings = run_lint([fixture("pc007_pin_leak.py")])
    assert [f.code for f in findings] == ["PC007"] * 2
    messages = " ".join(f.message for f in findings)
    assert "pool.pin(page_id)" in messages
    assert "block.retain(handle)" in messages
    assert "exception" in messages  # the unwind-only leak names its path


def test_pc008_fires_on_unclosed_segments_only():
    findings = run_lint([fixture("pc008_shm_leak.py")])
    assert [f.code for f in findings] == ["PC008"] * 2
    messages = " ".join(f.message for f in findings)
    assert "'shm'" in messages  # the named binding
    assert "ShmRegistry" in messages  # the dropped-on-the-floor create


def test_pc009_fires_on_late_writes_only():
    findings = run_lint([fixture("pc009_write_after_seal.py")])
    assert [f.code for f in findings] == ["PC009"] * 2
    messages = " ".join(f.message for f in findings)
    assert "'page'" in messages and "'block'" in messages


def test_fixture_tree_violates_every_rule():
    codes = {f.code for f in run_lint([FIXTURES])}
    assert codes == {
        "PC001", "PC002", "PC003", "PC004", "PC005", "PC006",
        "PC007", "PC008", "PC009",
    }


def test_repo_is_pc_rule_clean():
    assert run_lint([SRC]) == []


def test_repo_is_flow_rule_clean():
    # Explicitly the path-sensitive rules, so a regression in the CFG
    # engine cannot hide behind a pattern rule's findings.
    assert run_lint([SRC], select={"PC007", "PC008", "PC009"}) == []


# -- registry, select, reporters, CLI ----------------------------------------


def test_rule_catalog_is_complete():
    codes = [code for code, _name, _summary in iter_rules()]
    assert codes == [
        "PC001", "PC002", "PC003", "PC004", "PC005", "PC006",
        "PC007", "PC008", "PC009",
    ]


def test_select_runs_only_requested_rules():
    codes = codes_in(FIXTURES, select={"PC002"})
    assert codes and set(codes) == {"PC002"}


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    findings = run_lint([str(bad)])
    assert [f.code for f in findings] == ["PC000"]


def test_reporters():
    findings = run_lint([fixture("pc004_counter_no_trace.py")])
    text = format_text(findings)
    assert "PC004" in text and text.endswith("1 finding")
    payload = json.loads(format_json(findings))
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "PC004"


@pytest.mark.parametrize(
    "target,expected_exit", [(FIXTURES, 1), (SRC, 0)],
)
def test_cli_exit_codes(target, expected_exit):
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", target,
         "--format", "json"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == expected_exit, proc.stderr
    payload = json.loads(proc.stdout)
    assert (payload["count"] > 0) == (expected_exit == 1)


# -- baselines ----------------------------------------------------------------


def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    from repro.analysis import apply_baseline, load_baseline, write_baseline

    findings = run_lint([fixture("pc002_raw_buf.py")])
    assert findings
    snapshot = tmp_path / "baseline.json"
    write_baseline(findings, str(snapshot))
    known = load_baseline(str(snapshot))
    assert apply_baseline(findings, known) == []


def test_baseline_budget_is_multiset(tmp_path):
    # Two identical findings with one baselined occurrence: exactly one
    # survives — a budget, not a set test.
    from repro.analysis import apply_baseline

    source = "def f(b):\n    return b.buf[0]\n\ndef g(b):\n    return b.buf[0]\n"
    findings = lint_source(source, "repro/engine/foo.py")
    assert len(findings) == 2
    assert findings[0].fingerprint() == findings[1].fingerprint()
    remaining = apply_baseline(findings, [findings[0].fingerprint()])
    assert len(remaining) == 1


def test_baseline_survives_unrelated_line_shifts(tmp_path):
    from repro.analysis import apply_baseline, load_baseline, write_baseline

    before = "def f(b):\n    return b.buf[0]\n"
    after = "import os\n\n\ndef f(b):\n    return b.buf[0]\n"
    snapshot = tmp_path / "baseline.json"
    write_baseline(lint_source(before, "repro/engine/foo.py"), str(snapshot))
    shifted = lint_source(after, "repro/engine/foo.py")
    assert shifted  # still found...
    assert apply_baseline(shifted, load_baseline(str(snapshot))) == []


def test_baseline_rejects_unknown_version(tmp_path):
    from repro.analysis import load_baseline

    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "fingerprints": []}')
    with pytest.raises(ValueError):
        load_baseline(str(bad))


def test_cli_baseline_flags(tmp_path):
    env = dict(os.environ, PYTHONPATH=SRC)
    snapshot = str(tmp_path / "baseline.json")
    target = fixture("pc004_counter_no_trace.py")
    wrote = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", target,
         "--write-baseline", snapshot],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert wrote.returncode == 0, wrote.stderr
    gated = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", target,
         "--baseline", snapshot],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert gated.returncode == 0, gated.stderr + gated.stdout


# -- SARIF --------------------------------------------------------------------


def test_sarif_document_shape_and_validation():
    from repro.analysis import to_sarif, validate_sarif

    findings = run_lint([FIXTURES])
    doc = to_sarif(findings)
    assert validate_sarif(doc) == []
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "pcsan"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == [code for code, _n, _s in iter_rules()]
    assert len(run["results"]) == len(findings)
    result = run["results"][0]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_validator_catches_broken_documents():
    from repro.analysis import to_sarif, validate_sarif

    doc = to_sarif(run_lint([fixture("pc004_counter_no_trace.py")]))
    del doc["runs"][0]["results"][0]["message"]
    assert validate_sarif(doc)
    assert validate_sarif({"version": "2.1.0"})  # no runs at all


def test_cli_sarif_output_is_valid(tmp_path):
    from repro.analysis import validate_sarif

    env = dict(os.environ, PYTHONPATH=SRC)
    out = str(tmp_path / "pcsan.sarif")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", FIXTURES,
         "--format", "sarif", "--output", out],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stderr  # findings still gate
    with open(out) as handle:
        doc = json.load(handle)
    assert doc["version"] == "2.1.0"
    assert validate_sarif(doc) == []
    assert doc["runs"][0]["results"]
