"""The pcsan lint pass: every rule fires on its fixture, suppressions
silence them, and the repo itself is PC-rule-clean."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import iter_rules, run_lint
from repro.analysis.lint import format_json, format_text, lint_source

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC = os.path.join(REPO_ROOT, "src")


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def codes_in(path, select=None):
    return [f.code for f in run_lint([path], select=select)]


# -- each rule fires on its fixture ------------------------------------------


def test_pc001_fires_on_every_escape_pattern():
    findings = run_lint([fixture("pc001_handle_escape.py")])
    assert [f.code for f in findings] == ["PC001"] * 4
    messages = " ".join(f.message for f in findings)
    assert "instance state" in messages
    assert "module level" in messages
    assert "returned from inside" in messages


def test_pc002_fires_on_subscript_write_and_alias():
    codes = codes_in(fixture("pc002_raw_buf.py"))
    assert codes == ["PC002"] * 3


def test_pc003_fires_only_on_impure_lambdas():
    findings = run_lint([fixture("pc003_impure_lambda.py")])
    assert [f.code for f in findings] == ["PC003"] * 3
    reasons = " ".join(f.message for f in findings)
    assert "print" in reasons
    assert "random" in reasons
    assert "seen" in reasons  # the mutated closure name


def test_pc004_fires_only_on_mirrorless_family_counter():
    findings = run_lint([fixture("pc004_counter_no_trace.py")])
    assert len(findings) == 1
    assert findings[0].code == "PC004"
    assert "pc_pool_probe_hits_total" in findings[0].message


def test_pc005_fires_on_swallowing_excepts_only():
    findings = run_lint([fixture("cluster", "pc005_swallow.py")])
    assert [f.code for f in findings] == ["PC005"] * 3


def test_pc006_fires_in_kernel_scopes_only():
    findings = run_lint([fixture("pc006_kernel_deref.py")])
    assert [f.code for f in findings] == ["PC006"] * 2
    messages = " ".join(f.message for f in findings)
    assert "deref" in messages and "facade" in messages


def test_pc006_covers_the_kernel_library_module():
    source = "def apply_kernel(batch):\n    return batch.deref()\n"
    assert [
        f.code for f in lint_source(source, "repro/engine/kernels.py")
    ] == ["PC006"]
    assert lint_source(source, "repro/engine/pipeline.py") == []


def test_pc005_is_scoped_to_cluster_paths():
    source = "try:\n    ping()\nexcept ValueError:\n    pass\n"
    assert lint_source(source, "repro/cluster/foo.py") != []
    assert lint_source(source, "repro/engine/foo.py") == []


# -- suppressions -------------------------------------------------------------


def test_suppression_comment_silences_each_rule():
    assert run_lint([fixture("cluster", "suppressed.py")]) == []


def test_unrelated_suppression_does_not_silence():
    source = "x = block.buf[0]  # pcsan: disable=PC001\n"
    findings = lint_source(source, "repro/engine/foo.py")
    assert [f.code for f in findings] == ["PC002"]


# -- the fixture tree as a whole, and the repo -------------------------------


def test_fixture_tree_violates_every_rule():
    codes = {f.code for f in run_lint([FIXTURES])}
    assert codes == {"PC001", "PC002", "PC003", "PC004", "PC005", "PC006"}


def test_repo_is_pc_rule_clean():
    assert run_lint([SRC]) == []


# -- registry, select, reporters, CLI ----------------------------------------


def test_rule_catalog_is_complete():
    codes = [code for code, _name, _summary in iter_rules()]
    assert codes == ["PC001", "PC002", "PC003", "PC004", "PC005", "PC006"]


def test_select_runs_only_requested_rules():
    codes = codes_in(FIXTURES, select={"PC002"})
    assert codes and set(codes) == {"PC002"}


def test_syntax_error_is_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    findings = run_lint([str(bad)])
    assert [f.code for f in findings] == ["PC000"]


def test_reporters():
    findings = run_lint([fixture("pc004_counter_no_trace.py")])
    text = format_text(findings)
    assert "PC004" in text and text.endswith("1 finding")
    payload = json.loads(format_json(findings))
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "PC004"


@pytest.mark.parametrize(
    "target,expected_exit", [(FIXTURES, 1), (SRC, 0)],
)
def test_cli_exit_codes(target, expected_exit):
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", target,
         "--format", "json"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == expected_exit, proc.stderr
    payload = json.loads(proc.stdout)
    assert (payload["count"] > 0) == (expected_exit == 1)
