"""Tests for the TCAP optimizer, mirroring the Section 7 examples.

Every optimization must preserve semantics: each test compares the
optimized program's output (via the reference interpreter) against the
naive program's output.
"""

import copy

from repro.core import (
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
)
from repro.engine.interpreter import LocalInterpreter
from repro.tcap import compile_computations
from repro.tcap.ir import ApplyStmt, FilterStmt, JoinStmt
from repro.tcap.optimizer import optimize


class Emp:
    calls = 0

    def __init__(self, name, salary, supervisor):
        self.name = name
        self.salary = salary
        self.supervisor = supervisor

    def getSalary(self):
        Emp.calls += 1
        return self.salary

    def getSupervisor(self):
        return self.supervisor


class Sup:
    def __init__(self, name, region):
        self.name = name
        self.region = region


class SalaryBand(SelectionComp):
    """The paper's redundant-method-call example (Section 7)."""

    def get_selection(self, arg):
        return (lambda_from_method(arg, "getSalary") > 50_000) & (
            lambda_from_method(arg, "getSalary") < 100_000
        )

    def get_projection(self, arg):
        return lambda_from_member(arg, "name")


class SupervisorJoin(JoinComp):
    """The paper's pushdown example: salary predicate + key equality."""

    def get_selection(self, sup, emp):
        key_match = lambda_from_member(sup, "name") == \
            lambda_from_method(emp, "getSupervisor")
        well_paid = lambda_from_method(emp, "getSalary") > 50_000
        return key_match & well_paid

    def get_projection(self, sup, emp):
        return lambda_from_native(
            [sup, emp], lambda s, e: (s.region, e.name)
        )


def _outputs(program, sources):
    return LocalInterpreter(program, copy.deepcopy(sources)).run()


EMPS = [
    Emp("low", 30_000, "ann"),
    Emp("mid", 60_000, "ann"),
    Emp("mid2", 80_000, "bob"),
    Emp("high", 200_000, "bob"),
]
SUPS = [Sup("ann", "west"), Sup("bob", "east")]


def _selection_graph():
    reader = ObjectReader("db", "emps")
    writer = Writer("db", "out")
    writer.set_input(SalaryBand().set_input(reader))
    return writer


def test_redundant_method_call_is_eliminated():
    program = compile_computations(_selection_graph())
    naive_calls = program.to_text().count("getSalary")
    assert naive_calls == 2
    optimize(program)
    assert program.to_text().count("getSalary") == 1


def test_optimized_selection_preserves_semantics_and_saves_calls():
    sources = {("db", "emps"): EMPS}
    naive = compile_computations(_selection_graph())
    expected = _outputs(naive, sources)

    optimized = compile_computations(_selection_graph())
    optimize(optimized)
    Emp.calls = 0
    actual = _outputs(optimized, sources)
    optimized_calls = Emp.calls
    assert actual == expected

    Emp.calls = 0
    _outputs(naive, sources)
    naive_calls = Emp.calls
    # One getSalary per row instead of two.
    assert optimized_calls == len(EMPS)
    assert naive_calls == 2 * len(EMPS)


def _join_graph():
    reader_s = ObjectReader("db", "sups")
    reader_e = ObjectReader("db", "emps")
    join = SupervisorJoin().set_input(0, reader_s).set_input(1, reader_e)
    return Writer("db", "out").set_input(join)


def test_filter_pushed_below_join():
    program = compile_computations(_join_graph())
    optimize(program)
    statements = program.statements
    join_index = next(
        i for i, s in enumerate(statements) if isinstance(s, JoinStmt)
    )
    # Some filter now sits above (before) the join, carrying the pushed
    # salary predicate.
    pushed = [
        s for s in statements[:join_index] if isinstance(s, FilterStmt)
    ]
    assert pushed, "salary filter was not pushed below the join"
    salary_applies_before_join = [
        s
        for s in statements[:join_index]
        if isinstance(s, ApplyStmt) and s.info.get("methodName") == "getSalary"
    ]
    assert salary_applies_before_join


def test_pushdown_preserves_join_semantics():
    sources = {("db", "emps"): EMPS, ("db", "sups"): SUPS}
    naive = compile_computations(_join_graph())
    expected = sorted(_outputs(naive, sources)[("db", "out")])

    optimized = compile_computations(_join_graph())
    optimize(optimized)
    actual = sorted(_outputs(optimized, sources)[("db", "out")])
    assert actual == expected == [("east", "high"), ("east", "mid2"),
                                  ("west", "mid")]


def test_optimizer_reaches_fixpoint_and_validates():
    program = compile_computations(_join_graph())
    optimize(program)
    assert program.validate()
    before = program.to_text()
    optimize(program)
    assert program.to_text() == before  # idempotent at the fixpoint
