"""The static plan verifier: structural checks, type propagation over
columnar schemas, mark-consistency, and no false positives on compiled
programs."""

import pytest

from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
)
from repro.errors import PlanTypeError
from repro.memory.types import Int64
from repro.schema import Schema, f64, i64
from repro.tcap import compile_computations, parse_tcap, verify_program
from repro.tcap.ir import (
    ApplyStmt,
    FilterStmt,
    HashStmt,
    OutputStmt,
    ScanStmt,
    TcapProgram,
)
from repro.tcap.optimizer.columnar import mark_columnar

SCHEMA = Schema([("x", f64), ("y", f64), ("label", i64)])


def layout_of(database, set_name):
    return SCHEMA if (database, set_name) == ("db", "pts") else None


def scan(output="A", column="in", set_name="pts"):
    return ScanStmt(output, column, "db", set_name, "C")


def att_access(att, output="B", input_name="A", apply_col="in",
               new_column="v", info=None):
    merged = {"type": "attAccess", "attName": att}
    merged.update(info or {})
    return ApplyStmt(output, input_name, [apply_col], [apply_col],
                     new_column, "C", "s1", merged)


# -- structural checks --------------------------------------------------------


def test_dangling_input_is_rejected():
    program = TcapProgram([att_access("x")])
    with pytest.raises(PlanTypeError, match="before any statement"):
        verify_program(program)


def test_missing_column_is_rejected():
    program = TcapProgram([
        scan(),
        ApplyStmt("B", "A", ["nope"], ["in"], "v", "C", "s1",
                  {"type": "self"}),
    ])
    with pytest.raises(PlanTypeError, match="missing column"):
        verify_program(program)


def test_duplicate_producer_is_rejected():
    program = TcapProgram([scan(), scan()])
    with pytest.raises(PlanTypeError, match="produced twice"):
        verify_program(program)


def test_self_consumption_is_rejected():
    program = TcapProgram([
        scan(),
        ApplyStmt("A", "A", ["in"], ["in"], "v", "C", "s1",
                  {"type": "self"}),
    ])
    with pytest.raises(PlanTypeError, match="its own output"):
        verify_program(program)


def test_duplicate_output_column_is_rejected():
    program = TcapProgram([
        scan(),
        ApplyStmt("B", "A", ["in"], ["in"], "in", "C", "s1",
                  {"type": "self"}),
    ])
    with pytest.raises(PlanTypeError, match="appears twice"):
        verify_program(program)


# -- type propagation over a columnar schema ----------------------------------


def test_unknown_schema_column_fails_at_verify():
    program = TcapProgram([scan(), att_access("radius")])
    with pytest.raises(PlanTypeError, match="radius"):
        verify_program(program, layout_of=layout_of)


def test_known_schema_column_types_flow():
    program = TcapProgram([scan(), att_access("x")])
    types = verify_program(program, layout_of=layout_of)
    assert types["B"]["v"] == ("num", "f8")
    assert types["B"]["in"][0] == "rows"


def test_comparison_arity_is_checked():
    program = TcapProgram([
        scan(),
        att_access("x"),
        ApplyStmt("D", "B", ["v"], [], "cmp", "C", "s2",
                  {"type": "comparison", "op": ">"}),
    ])
    with pytest.raises(PlanTypeError, match="takes exactly 2"):
        verify_program(program, layout_of=layout_of)


def test_comparison_on_row_batch_is_rejected():
    program = TcapProgram([
        scan(),
        att_access("x"),
        ApplyStmt("D", "B", ["in", "v"], [], "cmp", "C", "s2",
                  {"type": "comparison", "op": ">"}),
    ])
    with pytest.raises(PlanTypeError, match="scalar operands"):
        verify_program(program, layout_of=layout_of)


def test_filter_mask_must_not_be_rows():
    program = TcapProgram([
        scan(),
        FilterStmt("F", "A", "in", ["in"], "C"),
    ])
    with pytest.raises(PlanTypeError, match="FILTER mask"):
        verify_program(program, layout_of=layout_of)


def test_error_carries_the_offending_statement_text():
    program = TcapProgram([scan(), att_access("radius")])
    with pytest.raises(PlanTypeError) as excinfo:
        verify_program(program, layout_of=layout_of)
    assert "APPLY" in str(excinfo.value)  # the .to_text() rendering
    assert excinfo.value.statement is program.statements[1]


# -- mark-consistency ---------------------------------------------------------


def test_marked_but_opaque_statement_is_rejected():
    stmt = HashStmt("H", "A", "in", ["in"], "h", "C",
                    {"columnar": "1"})
    program = TcapProgram([scan(), stmt])
    with pytest.raises(PlanTypeError, match="always opaque"):
        verify_program(program, layout_of=layout_of)


def test_marked_ineligible_apply_is_rejected():
    program = TcapProgram([
        scan(column="in"),
        att_access("x", info={"columnar": "1"}),
    ])
    program.statements[0].info["columnar"] = "1"
    # attAccess over the marked scan is fine...
    verify_program(program, layout_of=layout_of)
    # ...but a methodCall claiming to be columnar is not.
    bad = TcapProgram([
        scan(),
        ApplyStmt("B", "A", ["in"], ["in"], "v", "C", "s1",
                  {"type": "methodCall", "methodName": "getX",
                   "columnar": "1"}),
    ])
    bad.statements[0].info["columnar"] = "1"
    with pytest.raises(PlanTypeError, match="no array form"):
        verify_program(bad, layout_of=layout_of)


def test_marked_scan_of_row_set_is_rejected():
    stmt = scan(set_name="rows_only")
    stmt.info["columnar"] = "1"
    program = TcapProgram([stmt])
    with pytest.raises(PlanTypeError, match="not stored columnar"):
        verify_program(program, layout_of=layout_of)


def test_mark_columnar_output_always_verifies():
    program = TcapProgram([
        scan(),
        att_access("x"),
        ApplyStmt("D", "B", ["v", "v"], ["in"], "cmp", "C", "s2",
                  {"type": "comparison", "op": ">"}),
        FilterStmt("F", "D", "cmp", ["in"], "C"),
        OutputStmt("F", "in", "db", "out", "C"),
    ])
    marked = mark_columnar(program, layout_of)
    assert marked > 0
    verify_program(program, layout_of=layout_of)


# -- compiled programs verify unchanged ---------------------------------------


class _Sel(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_method(arg, "getSalary") > 50_000

    def get_projection(self, arg):
        return lambda_from_member(arg, "name")


class _Join(JoinComp):
    def get_selection(self, a, b):
        return lambda_from_member(a, "k") == lambda_from_member(b, "k")

    def get_projection(self, a, b):
        return lambda_from_native([a, b], lambda x, y: (x, y))


class _Agg(AggregateComp):
    key_type = Int64
    value_type = Int64

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda p: p[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda p: 1)


def test_compiled_selection_program_verifies():
    sel = _Sel().set_input(ObjectReader("db", "emps"))
    program = compile_computations(Writer("db", "out").set_input(sel))
    types = verify_program(program)
    assert types.columns_typed() > 0


def test_compiled_join_aggregate_program_verifies():
    join = _Join()
    join.set_input(0, ObjectReader("db", "a"))
    join.set_input(1, ObjectReader("db", "b"))
    agg = _Agg().set_input(join)
    program = compile_computations(Writer("db", "out").set_input(agg))
    verify_program(program)


def test_parsed_text_program_verifies_structurally():
    join = _Join()
    join.set_input(0, ObjectReader("db", "a"))
    join.set_input(1, ObjectReader("db", "b"))
    program = compile_computations(Writer("db", "out").set_input(join))
    parsed = parse_tcap(program.to_text())
    verify_program(parsed)  # no catalog, no oracle: structure only
