"""End-to-end tests: lambda API -> TCAP -> reference interpreter.

The scenarios follow the paper's running examples: the salary selection
of Section 7, the three-way Dep/Emp/Sup join of Section 4, and the
k-means-style aggregation of Appendix A.
"""

from repro.core import (
    AggregateComp,
    JoinComp,
    MultiSelectionComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
)
from repro.engine.interpreter import LocalInterpreter
from repro.memory.types import Int64, Float64
from repro.tcap import compile_computations


class Emp:
    def __init__(self, name, salary, dept):
        self.name = name
        self.salary = salary
        self.dept = dept

    def getSalary(self):
        return self.salary

    def getDeptName(self):
        return self.dept


class Dept:
    def __init__(self, deptName, budget):
        self.deptName = deptName
        self.budget = budget


class MidSalarySelection(SelectionComp):
    """The Section 7 example: 50000 < getSalary() < 100000."""

    def get_selection(self, arg):
        salary_ok = lambda_from_method(arg, "getSalary") > 50000
        not_too_big = lambda_from_method(arg, "getSalary") < 100000
        return salary_ok & not_too_big

    def get_projection(self, arg):
        return lambda_from_member(arg, "name")


def _run(sinks, sources):
    program = compile_computations(sinks)
    program.validate()
    return program, LocalInterpreter(program, sources).run()


def test_selection_pipeline():
    emps = [
        Emp("lo", 40_000, "sales"),
        Emp("mid", 75_000, "sales"),
        Emp("hi", 150_000, "eng"),
        Emp("mid2", 60_000, "eng"),
    ]
    reader = ObjectReader("db", "emps")
    sel = MidSalarySelection().set_input(reader)
    writer = Writer("db", "out").set_input(sel)

    program, outputs = _run(writer, {("db", "emps"): emps})
    assert outputs[("db", "out")] == ["mid", "mid2"]
    text = program.to_text()
    assert "methodCall" in text and "getSalary" in text
    # Naive compilation calls getSalary twice (the optimizer's target).
    assert text.count("getSalary") == 2


def test_two_way_join():
    emps = [Emp("a", 1, "sales"), Emp("b", 2, "eng"), Emp("c", 3, "hr")]
    depts = [Dept("sales", 100), Dept("eng", 200)]

    class DeptJoin(JoinComp):
        def get_selection(self, dept, emp):
            return lambda_from_member(dept, "deptName") == \
                lambda_from_method(emp, "getDeptName")

        def get_projection(self, dept, emp):
            return lambda_from_native(
                [dept, emp], lambda d, e: (e.name, d.budget)
            )

    reader_d = ObjectReader("db", "depts")
    reader_e = ObjectReader("db", "emps")
    join = DeptJoin().set_input(0, reader_d).set_input(1, reader_e)
    writer = Writer("db", "out").set_input(join)

    program, outputs = _run(
        writer, {("db", "emps"): emps, ("db", "depts"): depts}
    )
    assert sorted(outputs[("db", "out")]) == [("a", 100), ("b", 200)]
    assert "JOIN(" in program.to_text()
    assert "HASH(" in program.to_text()


def test_three_way_join_matches_paper_example():
    class Sup:
        def __init__(self, dept, boss):
            self.dept = dept
            self.boss = boss

        def getDept(self):
            return self.dept

    class ThreeWay(JoinComp):
        def __init__(self):
            super().__init__(arity=3)

        def get_selection(self, dep, emp, sup):
            return (
                lambda_from_member(dep, "deptName")
                == lambda_from_method(emp, "getDeptName")
            ) & (
                lambda_from_member(dep, "deptName")
                == lambda_from_method(sup, "getDept")
            )

        def get_projection(self, dep, emp, sup):
            return lambda_from_native(
                [dep, emp, sup], lambda d, e, s: (d.deptName, e.name, s.boss)
            )

    depts = [Dept("sales", 1), Dept("eng", 2)]
    emps = [Emp("a", 1, "sales"), Emp("b", 2, "eng")]
    sups = [Sup("sales", "S1"), Sup("eng", "S2"), Sup("hr", "S3")]

    r1, r2, r3 = (
        ObjectReader("db", "d"), ObjectReader("db", "e"), ObjectReader("db", "s")
    )
    join = ThreeWay().set_input(0, r1).set_input(1, r2).set_input(2, r3)
    writer = Writer("db", "out").set_input(join)
    program, outputs = _run(
        writer, {("db", "d"): depts, ("db", "e"): emps, ("db", "s"): sups}
    )
    assert sorted(outputs[("db", "out")]) == [
        ("eng", "b", "S2"), ("sales", "a", "S1"),
    ]
    # Two joins for three inputs.
    assert program.to_text().count("<= JOIN(") == 2


def test_aggregate_kmeans_style():
    class Point:
        def __init__(self, x):
            self.x = x

        def closest(self):
            return 0 if self.x < 10 else 1

    class SumByCluster(AggregateComp):
        key_type = Int64
        value_type = Float64

        def get_key_projection(self, arg):
            return lambda_from_method(arg, "closest")

        def get_value_projection(self, arg):
            return lambda_from_member(arg, "x")

    points = [Point(v) for v in (1.0, 2.0, 30.0, 4.0, 40.0)]
    reader = ObjectReader("db", "pts")
    agg = SumByCluster().set_input(reader)
    writer = Writer("db", "sums").set_input(agg)
    program, outputs = _run(writer, {("db", "pts"): points})
    result = dict(outputs[("db", "sums")])
    assert result == {0: 7.0, 1: 70.0}


def test_multi_selection_flattens():
    class Basket:
        def __init__(self, items):
            self.items = items

    class ExplodeItems(MultiSelectionComp):
        def get_projection(self, arg):
            return lambda_from_native([arg], lambda b: list(b.items))

    baskets = [Basket([1, 2]), Basket([]), Basket([3])]
    reader = ObjectReader("db", "baskets")
    multi = ExplodeItems().set_input(reader)
    writer = Writer("db", "items").set_input(multi)
    program, outputs = _run(writer, {("db", "baskets"): baskets})
    assert outputs[("db", "items")] == [1, 2, 3]
    assert "FLATTEN(" in program.to_text()
