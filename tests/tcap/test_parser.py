"""Tests for the TCAP text parser: round-trip with the printer."""

import pytest

from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.errors import TcapParseError
from repro.memory.types import Int64
from repro.tcap import compile_computations
from repro.tcap.parser import parse_tcap


class J(JoinComp):
    def get_selection(self, a, b):
        return lambda_from_member(a, "k") == lambda_from_member(b, "k")

    def get_projection(self, a, b):
        return lambda_from_native([a, b], lambda x, y: (x, y))


class A(AggregateComp):
    key_type = Int64
    value_type = Int64

    def get_key_projection(self, arg):
        return lambda_from_native([arg], lambda p: p[0])

    def get_value_projection(self, arg):
        return lambda_from_native([arg], lambda p: 1)


def _program():
    join = J()
    join.set_input(0, ObjectReader("db", "a"))
    join.set_input(1, ObjectReader("db", "b"))
    agg = A().set_input(join)
    return compile_computations(Writer("db", "out").set_input(agg))


def test_roundtrip_through_text():
    program = _program()
    text = program.to_text()
    parsed = parse_tcap(text)
    assert parsed.validate()
    assert parsed.to_text() == text
    assert len(parsed) == len(program)


def test_parses_paper_style_snippet():
    text = (
        "In(emp) <= SCAN('db', 'emps', 'Sel_43');\n"
        "JK2_1(emp,mt1) <= APPLY(In(emp), In(emp), 'Sel_43', "
        "'method_call_1', [('type', 'methodCall'), "
        "('methodName', 'getSalary')]);\n"
        "JK2_6(emp) <= FILTER(JK2_1(mt1), JK2_1(emp), 'Sel_43', []);\n"
        "OUTPUT(JK2_6(emp), 'db', 'out', 'Write_9');\n"
    )
    program = parse_tcap(text)
    assert program.validate()
    assert program.statements[1].info["methodName"] == "getSalary"
    assert program.statements[2].op == "FILTER"


def test_parse_errors_carry_line_numbers():
    with pytest.raises(TcapParseError):
        parse_tcap("garbage statement;")
    with pytest.raises(TcapParseError):
        parse_tcap("In(x) <= SCAN(unquoted, 'set', 'C');")
    with pytest.raises(TcapParseError):
        parse_tcap("In(x) <= SCAN('db', 'set', 'C')")  # missing semicolon


def test_parsed_programs_are_analysis_only():
    program = parse_tcap("In(x) <= SCAN('db', 'set', 'C');")
    from repro.errors import TcapError

    with pytest.raises(TcapError):
        program.stage_fn("C", "anything")
