"""Unit tests for the Chrome Trace Event export (repro.obs.timeline)."""

import json

from repro.obs import (
    Tracer,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.timeline import COORDINATOR_PID, MAIN_TID
from repro.obs.tracer import Span


def _merged_trace():
    """A coordinator trace with a grafted remote task, like PR 9 builds."""
    tracer = Tracer()
    with tracer.span("job", kind="job", detail="q17"):
        with tracer.span("PipelineJobStage", kind="stage"):
            with tracer.span("worker-0", kind="task") as task:
                tracer.event("refork worker-0", kind="fault",
                             counters={"faults.reforks": 1})
                remote = Span("task-1", kind="task")
                remote.pid = 4242
                remote.start, remote.end = task.start, task.start + 0.004
                for op_name in ("filter", "apply"):
                    op = Span(op_name, kind="op")
                    op.pid = 4242
                    op.start, op.end = remote.start, remote.end
                    op.counters["op.rows_in"] = 10
                    remote.children.append(op)
                remote.events.append(
                    {"seq": 1, "ts": remote.start + 0.001, "pid": 4242,
                     "kind": "task.dispatch", "task": 1})
                task.children.append(remote)
    return tracer.last_trace


def test_spans_become_matched_be_pairs_on_their_pid_track():
    payload = to_chrome_trace(_merged_trace())
    events = payload["traceEvents"]
    assert payload["displayTimeUnit"] == "ms"
    begins = [e for e in events if e["ph"] == "B"]
    ends = [e for e in events if e["ph"] == "E"]
    assert len(begins) == len(ends) == 6  # job, stage, task, remote, 2 ops
    by_name = {e["name"]: e for e in begins}
    assert by_name["job:job"]["pid"] == COORDINATOR_PID
    assert by_name["task:worker-0"]["pid"] == COORDINATOR_PID
    assert by_name["task:task-1"]["pid"] == 4242
    assert by_name["op:filter"]["pid"] == 4242
    assert by_name["job:job"]["args"]["detail"] == "q17"
    assert by_name["op:filter"]["args"]["counters"] == {"op.rows_in": 10}
    assert validate_chrome_trace(payload) == []


def test_overlapping_op_spans_get_their_own_lanes():
    payload = to_chrome_trace(_merged_trace())
    lanes = {
        e["name"]: e["tid"] for e in payload["traceEvents"]
        if e["ph"] == "B" and e["name"].startswith("op:")
    }
    # Coalesced ops of one task overlap in time; each op name gets its
    # own tid lane so Chrome's per-lane nesting requirement holds.
    assert lanes["op:filter"] != lanes["op:apply"]
    assert all(tid > MAIN_TID for tid in lanes.values())
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert thread_names[(4242, lanes["op:filter"])] == "op filter"


def test_instants_cover_tracer_events_and_flight_records():
    payload = to_chrome_trace(_merged_trace())
    instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
    names = {e["name"] for e in instants}
    assert "fault:refork worker-0" in names
    assert "flight:task.dispatch" in names
    assert all(e["s"] == "p" for e in instants)
    flight = next(e for e in instants if e["name"] == "flight:task.dispatch")
    assert flight["pid"] == 4242
    assert flight["args"]["task"] == 1
    assert "ts" not in flight["args"]  # ts lives on the event, not args


def test_metadata_names_every_track():
    payload = to_chrome_trace(_merged_trace())
    process_names = {
        e["pid"]: e["args"]["name"] for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert process_names[COORDINATOR_PID] == "coordinator"
    assert process_names[4242] == "worker pid 4242"


def test_timestamps_are_relative_microseconds_and_sorted():
    payload = to_chrome_trace(_merged_trace())
    timeline = [e for e in payload["traceEvents"] if e["ph"] != "M"]
    ts = [e["ts"] for e in timeline]
    assert ts == sorted(ts)
    assert ts[0] == 0.0  # the root opens the timeline
    remote_end = next(e for e in timeline
                      if e["ph"] == "E" and e["name"] == "task:task-1")
    assert abs(remote_end["ts"] - next(
        e for e in timeline
        if e["ph"] == "B" and e["name"] == "task:task-1"
    )["ts"] - 4000.0) < 1.0  # 0.004 s in microseconds


def test_truncated_spans_are_flagged_in_args():
    tracer = Tracer()
    with tracer.span("job", kind="job") as job:
        cut = Span("task-9", kind="task")
        cut.pid = 7
        cut.start, cut.end = job.start, job.start + 0.001
        cut.truncated = True
        job.children.append(cut)
    payload = to_chrome_trace(tracer.last_trace)
    begin = next(e for e in payload["traceEvents"]
                 if e["ph"] == "B" and e["name"] == "task:task-9")
    assert begin["args"]["truncated"] is True


def test_write_chrome_trace_produces_a_loadable_file(tmp_path):
    path = tmp_path / "trace.json"
    payload = write_chrome_trace(_merged_trace(), str(path))
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    assert on_disk == json.loads(json.dumps(payload))
    assert validate_chrome_trace(on_disk) == []


def test_validator_rejects_broken_payloads():
    assert validate_chrome_trace([]) == \
        ["payload is not a dict with a traceEvents list"]
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "B", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
        {"ph": "E", "name": "b", "ts": 2.0, "pid": 1, "tid": 1},
    ]})
    assert any("does not match open B" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "B", "name": "a", "ts": 2.0, "pid": 1, "tid": 1},
        {"ph": "E", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
    ]})
    assert any("out of order" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "B", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
    ]})
    assert any("left 1 span(s) open" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "i", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
    ]})
    assert any("instant without a valid scope" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "E", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
    ]})
    assert any("E with no open B" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "X", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
    ]})
    assert any("unsupported phase" in p for p in problems)
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
    ]})
    assert any("missing 'name'" in p for p in problems)
