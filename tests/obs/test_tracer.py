"""Unit tests for the tracing subsystem (repro.obs)."""

import json

from repro.obs import Tracer, render_trace


def test_spans_nest_and_time():
    tracer = Tracer()
    with tracer.span("job-1", kind="job") as job:
        with tracer.span("stage-a", kind="stage", detail="first"):
            with tracer.span("worker-0", kind="task"):
                pass
        with tracer.span("stage-b", kind="stage"):
            pass
    assert job.end is not None
    assert [c.name for c in job.children] == ["stage-a", "stage-b"]
    assert job.children[0].children[0].kind == "task"
    assert job.duration_s >= job.children[0].duration_s
    assert all(s.duration_s >= 0 for s in job.walk())


def test_counters_attach_to_innermost_open_span():
    tracer = Tracer()
    tracer.add("orphan", 5)  # no open span: must be a silent no-op
    with tracer.span("job", kind="job"):
        tracer.add("outer", 1)
        with tracer.span("stage", kind="stage"):
            tracer.add("inner", 2)
            tracer.add("inner", 3)
    trace = tracer.last_trace
    assert trace.root.counters == {"outer": 1}
    assert trace.root.children[0].counters == {"inner": 5}
    # Roll-up merges descendants into the job view.
    assert trace.totals() == {"outer": 1, "inner": 5}


def test_last_trace_set_only_when_top_level_span_closes():
    tracer = Tracer()
    with tracer.span("job", kind="job"):
        with tracer.span("stage", kind="stage"):
            pass
        assert tracer.last_trace is None  # job still open
    assert tracer.last_trace is not None
    assert tracer.last_trace.root.name == "job"


def test_last_trace_survives_a_raising_span():
    tracer = Tracer()
    try:
        with tracer.span("job", kind="job"):
            with tracer.span("stage", kind="stage"):
                raise RuntimeError("boom")
    except RuntimeError:
        pass
    trace = tracer.last_trace
    assert trace is not None
    assert trace.root.end is not None
    assert trace.root.children[0].end is not None


def test_trace_queries_and_json_round_trip():
    tracer = Tracer()
    with tracer.span("job", kind="job"):
        tracer.add("job.stages", 2)
        with tracer.span("s1", kind="stage"):
            tracer.add("net.bytes_zero_copy", 128)
        with tracer.span("s2", kind="stage"):
            tracer.add("net.bytes_rows", 64)
    trace = tracer.last_trace
    assert [s.name for s in trace.spans(kind="stage")] == ["s1", "s2"]
    assert len(trace.spans()) == 3

    parsed = json.loads(trace.to_json())
    assert parsed["kind"] == "job"
    assert parsed["totals"]["net.bytes_zero_copy"] == 128
    stages = parsed["children"]
    assert [s["name"] for s in stages] == ["s1", "s2"]
    assert all(s["duration_s"] >= 0 for s in stages)


def test_render_trace_mentions_spans_and_counters():
    tracer = Tracer()
    with tracer.span("job", kind="job"):
        with tracer.span("BuildHashTableJobStage", kind="stage",
                         detail="broadcast"):
            tracer.add("net.bytes_zero_copy", 4096)
    text = render_trace(tracer.last_trace)
    assert "job" in text
    assert "BuildHashTableJobStage" in text
    assert "broadcast" in text
    assert "net.bytes_zero_copy" in text
    assert "4096" in text


def test_trace_json_round_trip_rebuilds_the_span_tree():
    """to_json -> from_json preserves names, kinds, details, durations,
    counters, and rolled-up totals (satellite: trace persistence)."""
    from repro.obs import Trace

    tracer = Tracer()
    with tracer.span("job", kind="job", detail="q17"):
        tracer.add("job.stages", 2)
        with tracer.span("scan", kind="stage", detail="tpch.customers"):
            tracer.add("pool.pages_pinned", 5)
        with tracer.span("agg", kind="stage"):
            tracer.add("engine.rows_in", 40)
            with tracer.span("worker-0", kind="task"):
                tracer.add("net.bytes_zero_copy", 4096)
    original = tracer.last_trace

    restored = Trace.from_json(original.to_json())

    assert restored.totals() == original.totals()
    for got, want in zip(restored.root.walk(), original.root.walk()):
        assert got.name == want.name
        assert got.kind == want.kind
        assert got.detail == want.detail
        assert got.counters == want.counters
        assert got.duration_s == round(want.duration_s, 9)
    assert [s.name for s in restored.spans(kind="stage")] == ["scan", "agg"]
    # and the round-trip is a fixed point: re-serializing changes nothing
    assert restored.to_json() == original.to_json()
