"""Unit tests for the typed metrics layer.

Covers the counter/gauge/histogram primitives, the bucket-boundary
percentile math (satellite: histogram quantiles at exact bucket
boundaries), snapshot merging across per-process registries, and the
trace-mirror / ``stats_view`` derivation that keeps metric names, trace
counters, and legacy ``stats()`` keys from drifting apart.
"""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Tracer,
    exponential_buckets,
)
from repro.obs.metrics import quantile_from_buckets


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------

def test_counter_inc_and_total():
    c = Counter("pc_things_total")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_rejects_negative_increments():
    c = Counter("pc_things_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_labeled_series_sum_to_total():
    c = Counter("pc_ops_total", labelnames=("op",))
    c.inc(2, op="apply")
    c.inc(3, op="filter")
    assert c.value_for(op="apply") == 2
    assert c.value_for(op="filter") == 3
    assert c.value == 5
    assert c.series() == {("apply",): 2, ("filter",): 3}


def test_counter_enforces_declared_labelnames():
    c = Counter("pc_ops_total", labelnames=("op",))
    with pytest.raises(ValueError):
        c.inc()  # missing the label
    with pytest.raises(ValueError):
        c.inc(op="apply", extra="nope")


def test_counter_reset():
    c = Counter("pc_things_total")
    c.inc(7)
    c.reset()
    assert c.value == 0


def test_gauge_set_inc_dec():
    g = Gauge("pc_level")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12


# ---------------------------------------------------------------------------
# Histogram bucket math (satellite: percentiles at bucket boundaries)
# ---------------------------------------------------------------------------

def test_exponential_buckets_shape():
    assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]
    with pytest.raises(ValueError):
        exponential_buckets(0, 2.0, 4)
    with pytest.raises(ValueError):
        exponential_buckets(1.0, 1.0, 4)


def test_observation_on_bucket_boundary_lands_in_that_bucket():
    # le semantics: value == upper bound belongs to that bound's bucket.
    h = Histogram("pc_lat_seconds", buckets=[1.0, 2.0, 4.0, 8.0])
    h.observe(2.0)
    (series,) = h.series().values()
    assert series["counts"] == [0, 1, 0, 0, 0]


def test_quantiles_at_bucket_boundaries():
    h = Histogram("pc_lat_seconds", buckets=[1.0, 2.0, 4.0, 8.0])
    for value in (1.0, 2.0, 4.0, 8.0):
        h.observe(value)
    # rank p50 = 2 falls exactly on the cumulative edge of the le=2
    # bucket; interpolation must return the bound itself, not overshoot.
    assert h.quantile(0.5) == 2.0
    assert h.quantile(0.25) == 1.0
    assert h.quantile(1.0) == 8.0


def test_quantile_interpolates_within_a_bucket():
    h = Histogram("pc_lat_seconds", buckets=[1.0, 2.0])
    for _ in range(4):
        h.observe(1.5)  # all mass in the (1, 2] bucket
    # rank = q*4 inside a 4-count bucket spanning (1.0, 2.0]
    assert h.quantile(0.5) == pytest.approx(1.5)
    assert h.quantile(0.25) == pytest.approx(1.25)


def test_overflow_bucket_reports_max_observed():
    h = Histogram("pc_lat_seconds", buckets=[1.0, 2.0])
    h.observe(100.0)
    assert h.quantile(0.99) == 100.0
    assert h.quantile(0.5) == 100.0


def test_quantile_of_empty_histogram_is_none():
    h = Histogram("pc_lat_seconds", buckets=[1.0, 2.0])
    assert h.quantile(0.5) is None


def test_quantile_from_buckets_rejects_bad_q():
    with pytest.raises(ValueError):
        quantile_from_buckets(1.5, [1.0], [1, 0], 1)


def test_labeled_histogram_merges_series_for_unlabeled_quantile():
    h = Histogram("pc_op_seconds", labelnames=("operator",),
                  buckets=[1.0, 2.0, 4.0])
    h.observe(1.0, operator="apply")
    h.observe(4.0, operator="filter")
    assert h.quantile(1.0) == 4.0
    assert h.quantile(1.0, operator="apply") == 1.0
    assert h.count_for(operator="filter") == 1


# ---------------------------------------------------------------------------
# Registry + snapshot merging
# ---------------------------------------------------------------------------

def test_registry_get_or_create_returns_same_metric():
    reg = MetricsRegistry()
    a = reg.counter("pc_x_total")
    b = reg.counter("pc_x_total")
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("pc_x_total")  # kind conflict


def test_snapshot_stamps_constant_labels():
    reg = MetricsRegistry(labels={"worker": "worker-1"})
    reg.counter("pc_x_total").inc(3)
    snap = reg.snapshot()
    assert snap.value("pc_x_total", worker="worker-1") == 3
    assert snap.labels("pc_x_total") == [{"worker": "worker-1"}]


def test_merge_sums_counters_across_processes():
    snaps = []
    for worker, amount in (("w0", 2), ("w1", 5)):
        reg = MetricsRegistry(labels={"worker": worker})
        reg.counter("pc_pool_pages_pinned_total").inc(amount)
        snaps.append(reg.snapshot())
    merged = MetricsSnapshot.merge(snaps)
    # Per-worker series survive; the unlabeled query sums them.
    assert merged.value("pc_pool_pages_pinned_total") == 7
    assert merged.value("pc_pool_pages_pinned_total", worker="w1") == 5


def test_merge_adds_histograms_bucket_wise():
    snaps = []
    for worker, value in (("w0", 1.0), ("w1", 100.0)):
        reg = MetricsRegistry()  # same label set -> series must merge
        reg.histogram("pc_lat_seconds", buckets=[1.0, 2.0]).observe(value)
        snaps.append(reg.snapshot())
    merged = MetricsSnapshot.merge(snaps)
    family = merged.families["pc_lat_seconds"]
    (series,) = family["series"].values()
    assert series["count"] == 2
    assert series["max"] == 100.0
    assert merged.quantile("pc_lat_seconds", 1.0) == 100.0


def test_snapshot_value_matches_label_subsets():
    reg = MetricsRegistry()
    c = reg.counter("pc_net_link_bytes_total", labelnames=("src", "dst"))
    c.inc(10, src="a", dst="b")
    c.inc(20, src="a", dst="c")
    snap = reg.snapshot()
    assert snap.value("pc_net_link_bytes_total", src="a") == 30
    assert snap.value("pc_net_link_bytes_total", src="a", dst="c") == 20
    assert snap.value("pc_missing_total", default=-1) == -1


def test_on_collect_hooks_run_before_snapshot():
    reg = MetricsRegistry()
    g = reg.gauge("pc_level")
    reg.on_collect(lambda: g.set(42))
    assert reg.snapshot().value("pc_level") == 42


# ---------------------------------------------------------------------------
# Trace mirrors + stats_view (satellite: single-source naming)
# ---------------------------------------------------------------------------

def test_counter_with_trace_mirror_reports_into_active_span():
    tracer = Tracer()
    reg = MetricsRegistry(tracer=tracer)
    c = reg.counter("pc_repl_replica_writes_total",
                    trace="repl.replica_writes")
    with tracer.span("job", kind="job"):
        with tracer.span("write"):
            c.inc(3)
    assert tracer.last_trace.totals()["repl.replica_writes"] == 3
    assert c.value == 3


def test_templated_mirror_formats_label_values():
    tracer = Tracer()
    reg = MetricsRegistry(tracer=tracer)
    c = reg.counter("pc_net_link_bytes_total", labelnames=("src", "dst"),
                    trace="net.link.{src}->{dst}")
    with tracer.span("job", kind="job"):
        with tracer.span("ship"):
            c.inc(64, src="w0", dst="w1")
    assert tracer.last_trace.totals()["net.link.w0->w1"] == 64


def test_stats_view_derives_keys_from_trace_mirrors():
    reg = MetricsRegistry()
    reg.counter("pc_repl_replica_writes_total",
                trace="repl.replica_writes").inc(2)
    reg.counter("pc_repl_pages_healed_total", trace="repl.pages_healed")
    # Templated mirrors are structured entries, not flat stats keys.
    reg.counter("pc_net_link_bytes_total", labelnames=("src", "dst"),
                trace="net.link.{src}->{dst}")
    assert reg.stats_view("repl.") == {
        "replica_writes": 2, "pages_healed": 0,
    }
    assert reg.stats_view("net.") == {}
    assert reg.trace_names("repl.") == {
        "repl.replica_writes", "repl.pages_healed",
    }
