"""Tests for the live console (repro.obs.top / ``python -m repro.obs.top``)."""

import pytest

from repro.cluster import PCCluster
from repro.cluster.transport import remote_available
from repro.obs.top import ClusterTop, _human_bytes, main
from repro.tpch import TpchSpec, customers_per_supplier_pc, \
    load_pc_customers

needs_process = pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)

SPEC = TpchSpec(n_customers=20, n_parts=30, n_suppliers=5, seed=3)


def test_sample_and_render_on_the_simulated_transport(tmp_path):
    cluster = PCCluster(n_workers=3, page_size=1 << 14,
                        spill_root=str(tmp_path))
    try:
        load_pc_customers(cluster, SPEC)
        top = ClusterTop(cluster)
        frame = top.sample()
        assert [s.worker_id for s in frame] == \
            [w.worker_id for w in cluster.workers]
        # No supervisor on the sim transport: liveness defaults to alive.
        assert all(s.state == "alive" for s in frame)
        assert all(s.pool_capacity > 0 for s in frame)
        text = top.render(frame)
        lines = text.splitlines()
        assert lines[0].split() == ["WORKER", "STATE", "PID", "TASK",
                                    "ROWS", "ROWS/S", "POOL", "REFORK"]
        assert len(lines) == 1 + len(cluster.workers)
        assert "worker-0" in text and "ALIVE" in text
    finally:
        cluster.close()


@needs_process
def test_sample_reads_heartbeats_on_the_process_transport(tmp_path):
    cluster = PCCluster(n_workers=3, page_size=1 << 14,
                        spill_root=str(tmp_path), transport="process")
    try:
        load_pc_customers(cluster, SPEC)
        customers_per_supplier_pc(cluster)
        top = ClusterTop(cluster)
        frame = top.sample()
        child_pids = {w.backend.child_pid for w in cluster.workers}
        assert {s.pid for s in frame} == child_pids
        assert all(s.state in ("alive", "suspect", "dead") for s in frame)
        # Rows consumed were published through the heartbeat slot.
        assert sum(s.rows for s in frame) > 0
        assert all(s.reforks == 0 for s in frame)
    finally:
        cluster.close()


def test_rows_per_second_differentiates_between_samples(tmp_path):
    cluster = PCCluster(n_workers=2, page_size=1 << 12,
                        spill_root=str(tmp_path))
    try:
        ticks = iter([10.0, 12.0, 10.0, 12.0])
        top = ClusterTop(cluster, clock=lambda: next(ticks))
        first = top.sample()
        assert all(s.rows_per_s == 0.0 for s in first)  # no prior sample
        second = top.sample()
        # Sim vitals report 0 rows at rest: the rate stays zero, but the
        # differentiation path ran with a 2-second gap.
        assert all(s.rows_per_s == 0.0 for s in second)
    finally:
        cluster.close()


def test_dead_workers_sort_to_the_top():
    class _Sup:
        def __init__(self, states):
            self._states = states

        def vitals(self, worker_id):
            class V:
                pass

            vit = V()
            vit.state = self._states[worker_id]
            vit.pid, vit.task_id, vit.rows = 99, 0, 0
            return vit

    class _Pool:
        @staticmethod
        def stats():
            return {"in_memory_bytes": 0, "capacity_bytes": 1024}

    class _Storage:
        pool = _Pool()

    class _Worker:
        refork_count = 0
        storage = _Storage()

        def __init__(self, worker_id):
            self.worker_id = worker_id
            self.backend = type("B", (), {"child_pid": None})()

    class _Transport:
        pass

    class _Cluster:
        transport = _Transport()
        workers = [_Worker("worker-0"), _Worker("worker-1"),
                   _Worker("worker-2")]

    _Cluster.transport.supervisor = _Sup({
        "worker-0": "alive", "worker-1": "dead", "worker-2": "suspect",
    })
    frame = ClusterTop(_Cluster()).sample()
    assert [s.worker_id for s in frame] == \
        ["worker-1", "worker-2", "worker-0"]


def test_human_bytes_scales_units():
    assert _human_bytes(512) == "512B"
    assert _human_bytes(2048) == "2.0KiB"
    assert _human_bytes(3 * 1024 * 1024) == "3.0MiB"
    assert _human_bytes(5 * 1024 ** 3) == "5.0GiB"


def test_main_renders_bounded_frames_on_the_sim_transport(capsys):
    rc = main(["--transport", "sim", "--workers", "2", "--frames", "2",
               "--interval", "0.05"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "frame 1/2" in out and "frame 2/2" in out
    assert out.count("WORKER") == 2
    assert "worker-1" in out
