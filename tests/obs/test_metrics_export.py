"""Acceptance tests: cluster-wide metrics after a real TPC-H job.

The ISSUE acceptance bar: a Prometheus-text snapshot taken from
``cluster.metrics()`` after a TPC-H job must contain buffer-pool,
network, scheduler, replication, and per-stage operator-latency
(p50/p95) series — asserted here by exact series name.  Also covers the
JSON export, the terminal renderer, ``cluster.health()``, and the
satellite guarantee that trace-counter names and ``stats()`` keys derive
from the same declarations.
"""

import json

import pytest

from repro.cluster import PCCluster
from repro.tpch import TpchSpec, customers_per_supplier_pc, load_pc_customers

SPEC = TpchSpec(n_customers=40, n_parts=60, n_suppliers=8, seed=3)


@pytest.fixture(scope="module")
def cluster():
    cluster = PCCluster(n_workers=2, page_size=1 << 16, profiling=True)
    load_pc_customers(cluster, SPEC, replication=2)
    result, total = customers_per_supplier_pc(cluster)
    assert total > 0  # the job really ran
    return cluster


@pytest.fixture(scope="module")
def snapshot(cluster):
    return cluster.metrics()


@pytest.fixture(scope="module")
def exposition(snapshot):
    return snapshot.to_prometheus()


def test_prometheus_has_buffer_pool_series(exposition):
    assert "pc_pool_pages_created_total{worker=" in exposition
    assert "pc_pool_pages_pinned_total{worker=" in exposition
    assert "pc_pool_in_memory_bytes{worker=" in exposition
    assert "pc_pool_capacity_bytes{worker=" in exposition


def test_prometheus_has_network_series(exposition):
    assert "pc_net_messages_total " in exposition
    assert "pc_net_bytes_total " in exposition
    assert "pc_net_bytes_zero_copy_total " in exposition
    # per-link breakdown is labeled by endpoint pair
    assert 'pc_net_link_bytes_total{src="' in exposition


def test_prometheus_has_scheduler_series(exposition):
    assert "pc_sched_jobs_total " in exposition
    assert "pc_sched_job_seconds_bucket" in exposition
    assert 'pc_sched_stage_seconds_bucket{le="' in exposition or \
        'pc_sched_stage_seconds_bucket{stage="' in exposition
    assert "pc_sched_stage_cpu_seconds_total{stage=" in exposition
    assert "pc_sched_stages_total{stage=" in exposition


def test_prometheus_has_replication_series(exposition):
    assert "pc_repl_replica_writes_total " in exposition
    # the job wrote replicated pages, so the counter is live
    assert "pc_repl_replica_writes_total 0" not in exposition


def test_prometheus_has_operator_latency_quantiles(exposition):
    # Summary-style series computed from the histogram buckets: the
    # per-operator p50/p95 the perf PRs are judged against.
    assert 'pc_op_seconds{operator="apply",quantile="0.5"}' in exposition
    assert 'pc_op_seconds{operator="apply",quantile="0.95"}' in exposition
    assert 'pc_op_seconds_bucket{operator="apply",le="' in exposition
    assert 'pc_op_seconds_count{operator="apply"}' in exposition


def test_prometheus_has_help_and_type_lines(exposition):
    assert "# TYPE pc_net_messages_total counter" in exposition
    assert "# TYPE pc_pool_in_memory_bytes gauge" in exposition
    assert "# TYPE pc_op_seconds histogram" in exposition


def test_merged_snapshot_sums_worker_registries(cluster, snapshot):
    # The cluster-wide pin total is exactly the sum of per-worker pools.
    per_worker = sum(w.storage.pool.pins for w in cluster.workers)
    assert snapshot.value("pc_pool_pages_pinned_total") == per_worker
    # Each worker's series is individually addressable.
    worker = cluster.workers[0]
    assert snapshot.value(
        "pc_pool_pages_pinned_total", worker=worker.worker_id
    ) == worker.storage.pool.pins


def test_operator_quantiles_are_ordered(snapshot):
    p50 = snapshot.quantile("pc_op_seconds", 0.5, operator="apply")
    p95 = snapshot.quantile("pc_op_seconds", 0.95, operator="apply")
    p99 = snapshot.quantile("pc_op_seconds", 0.99, operator="apply")
    assert p50 is not None
    assert p50 <= p95 <= p99


def test_engine_counters_published_into_worker_registries(snapshot):
    assert snapshot.value("pc_engine_batches_total") > 0
    assert snapshot.value("pc_engine_rows_in_total") > 0


def test_allocator_counters_published(snapshot):
    assert snapshot.value("pc_alloc_blocks_total") > 0
    assert snapshot.value("pc_alloc_allocations_total") > 0


def test_json_export_round_trips(snapshot):
    doc = json.loads(snapshot.to_json())
    assert doc["pc_net_messages_total"]["kind"] == "counter"
    (series,) = doc["pc_net_messages_total"]["series"]
    assert series["value"] == snapshot.value("pc_net_messages_total")
    op = doc["pc_op_seconds"]
    assert op["kind"] == "histogram"
    apply_series = [
        s for s in op["series"] if s["labels"].get("operator") == "apply"
    ]
    assert apply_series and "0.5" in apply_series[0]["quantiles"]


def test_render_metrics_mentions_latency_table(snapshot):
    text = snapshot.render()
    assert "metrics (cluster-wide)" in text
    assert "p50_ms" in text
    assert "pc_op_seconds" in text


def test_cluster_health_is_ok_after_clean_job(cluster):
    statuses = cluster.health()
    assert {s.name for s in statuses} == {
        "buffer-pool-hit-rate",
        "replication-factor-satisfied",
        "no-blacklisted-workers",
        "corruption-healed",
    }
    assert all(s.ok for s in statuses), statuses
    assert cluster.healthy()


# ---------------------------------------------------------------------------
# Satellite: stats() keys and trace-counter names derive from one source
# ---------------------------------------------------------------------------

def test_replication_stats_keys_match_trace_mirror_names(cluster):
    repl = cluster.replication
    derived = repl.metrics.stats_view("repl.")
    assert set(derived) == set(repl.stats())
    assert {"repl." + key for key in repl.stats()} == \
        repl.metrics.trace_names("repl.")
    # values read from the same counters -> cannot drift
    for key, value in derived.items():
        assert repl.stats()[key] == value


def test_pool_stats_counter_keys_match_trace_mirror_names(cluster):
    pool = cluster.workers[0].storage.pool
    derived = pool.metrics.stats_view("pool.")
    stats = pool.stats()
    # Counter-backed keys come straight from the mirror declarations;
    # "pins" is the one legacy spelling (mirror: pool.pages_pinned).
    assert set(derived) - set(stats) == {"pages_pinned"}
    assert derived["pages_pinned"] == stats["pins"]
    for key in set(derived) & set(stats):
        assert derived[key] == stats[key]


def test_network_stats_counter_keys_match_trace_mirror_names(cluster):
    net = cluster.network
    derived = net.metrics.stats_view("net.")
    stats = net.stats()
    # delay_events/delay_ms surface in traces only; stats() additionally
    # reports the structured by_link breakdown and the transport name.
    assert set(derived) - set(stats) == {"delay_events", "delay_ms"}
    assert set(stats) - set(derived) == {"by_link", "transport"}
    for key in set(derived) & set(stats):
        assert derived[key] == stats[key]


def test_trace_totals_agree_with_registry_after_job(cluster):
    """The same increment feeds the trace span and the lifetime counter."""
    cluster.network.reset()
    before = {
        name: cluster.metrics().value(name)
        for name in ("pc_net_messages_total", "pc_net_bytes_total")
    }
    customers_per_supplier_pc(cluster)
    totals = cluster.last_trace.totals()
    after = cluster.metrics()
    assert totals["net.messages"] == \
        after.value("pc_net_messages_total") - before["pc_net_messages_total"]
    assert totals["net.bytes_total"] == \
        after.value("pc_net_bytes_total") - before["pc_net_bytes_total"]
