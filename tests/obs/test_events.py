"""Unit tests for the flight recorder (repro.obs.events)."""

import json

from repro.obs.events import (
    DEFAULT_CAPACITY,
    RECORD_SLOT_BYTES,
    RING_BYTES,
    FlightRecorder,
    read_ring,
)


def _clock_from(values):
    it = iter(values)
    return lambda: next(it)


def test_records_carry_seq_ts_pid_and_fields():
    recorder = FlightRecorder(clock=_clock_from([1.5, 2.5]))
    first = recorder.record("task.dispatch", task=7, worker="worker-0")
    second = recorder.record("task.complete", task=7, rows=40)
    assert first["seq"] == 1 and second["seq"] == 2
    assert first["ts"] == 1.5 and second["ts"] == 2.5
    assert first["pid"] == second["pid"] > 0
    assert first["kind"] == "task.dispatch" and first["worker"] == "worker-0"
    assert second["rows"] == 40
    assert len(recorder) == 2


def test_ring_is_bounded_and_drops_oldest():
    recorder = FlightRecorder(capacity=4)
    for n in range(10):
        recorder.record("tick", n=n)
    assert len(recorder) == 4
    assert recorder.seq == 10
    kept = recorder.snapshot()
    assert [event["n"] for event in kept] == [6, 7, 8, 9]
    assert [event["seq"] for event in kept] == [7, 8, 9, 10]


def test_snapshot_since_seq_returns_only_newer_events():
    recorder = FlightRecorder(capacity=8)
    for n in range(3):
        recorder.record("tick", n=n)
    mark = recorder.seq
    recorder.record("tick", n=3)
    recorder.record("tick", n=4)
    newer = recorder.snapshot(since_seq=mark)
    assert [event["n"] for event in newer] == [3, 4]
    # Snapshots are copies: mutating one must not corrupt the ring.
    newer[0]["n"] = 99
    assert recorder.snapshot(since_seq=mark)[0]["n"] == 3


def test_shared_buffer_round_trips_through_read_ring():
    buffer = bytearray(RING_BYTES)
    recorder = FlightRecorder(buffer=buffer)
    for n in range(5):
        recorder.record("net.page_ship", n=n, src="worker-0", dst="worker-1")
    events = read_ring(buffer)
    assert [event["n"] for event in events] == [0, 1, 2, 3, 4]
    assert all(event["kind"] == "net.page_ship" for event in events)
    assert all(event["pid"] > 0 for event in events)


def test_shared_buffer_wraps_and_keeps_the_newest_slots():
    slots = 4
    buffer = bytearray(slots * RECORD_SLOT_BYTES)
    recorder = FlightRecorder(capacity=slots, buffer=buffer)
    for n in range(10):
        recorder.record("tick", n=n)
    events = read_ring(buffer)
    # Ten writes into four slots: the last four survive, seq-ordered.
    assert [event["n"] for event in events] == [6, 7, 8, 9]


def test_read_ring_skips_torn_records():
    buffer = bytearray(RING_BYTES)
    recorder = FlightRecorder(buffer=buffer)
    for n in range(4):
        recorder.record("tick", n=n)
    # Tear the second slot mid-record, like a SIGKILL mid-write would.
    start = RECORD_SLOT_BYTES
    buffer[start:start + 10] = b'{"seq": 2,'.ljust(10)[:10]
    buffer[start + 10:start + RECORD_SLOT_BYTES] = \
        b"\x00" * (RECORD_SLOT_BYTES - 10)
    events = read_ring(buffer)
    assert [event["n"] for event in events] == [0, 2, 3]


def test_read_ring_ignores_empty_buffer():
    assert read_ring(bytearray(RING_BYTES)) == []


def test_oversize_records_are_clipped_to_their_core():
    buffer = bytearray(RING_BYTES)
    recorder = FlightRecorder(buffer=buffer)
    recorder.record("sched.blacklist", reason="x" * (2 * RECORD_SLOT_BYTES))
    # In-process ring keeps the full record ...
    assert recorder.snapshot()[0]["reason"].startswith("xxx")
    # ... the shared slot keeps a legible core instead of a torn tail.
    (event,) = read_ring(buffer)
    assert event["kind"] == "sched.blacklist"
    assert event["clipped"] is True
    assert "reason" not in event


def test_unencodable_fields_degrade_to_the_clipped_core():
    buffer = bytearray(RING_BYTES)
    recorder = FlightRecorder(buffer=buffer)
    recorder.record("sup.state", payload=object())
    (event,) = read_ring(buffer)
    assert event["kind"] == "sup.state"
    # default=str makes most objects encodable; whichever branch ran,
    # the slot must decode as valid JSON with the core fields intact.
    assert event["seq"] == 1 and event["pid"] > 0


def test_default_ring_geometry_matches_the_shared_allocation():
    assert RING_BYTES == DEFAULT_CAPACITY * RECORD_SLOT_BYTES
    buffer = bytearray(RING_BYTES)
    recorder = FlightRecorder(buffer=buffer)
    assert recorder._slots == DEFAULT_CAPACITY
    recorder.record("tick")
    raw = bytes(buffer[:RECORD_SLOT_BYTES]).rstrip(b" ")
    json.loads(raw.decode("utf-8"))  # first slot is one legible record
