"""Unknown-name lookups must fail loudly, not return empty results.

The seed code's scan path (now ``PCCluster.read``) (and the join-planning size probe)
swallowed every exception, so a typo'd database or set name silently
produced ``[]`` — and downstream "my aggregate is empty" confusion.
"""

import pytest

from repro.cluster import PCCluster
from repro.core import ObjectReader, SelectionComp, Writer, \
    lambda_from_member
from repro.errors import SetNotFoundError, StorageError
from repro.memory import Float64, Int32, PCObject


class Point(PCObject):
    fields = [("pid", Int32), ("x", Float64)]


@pytest.fixture
def cluster(tmp_path):
    c = PCCluster(n_workers=2, page_size=1 << 12, spill_root=str(tmp_path))
    c.create_database("db")
    c.create_set("db", "points", Point)
    with c.loader("db", "points") as load:
        for i in range(10):
            load.append(Point, pid=i, x=float(i))
    return c


def test_read_unknown_set_raises_storage_error(cluster):
    with pytest.raises(StorageError):
        cluster.read("db", "poinst")  # typo'd set name


def test_read_unknown_database_raises_storage_error(cluster):
    with pytest.raises(SetNotFoundError):
        cluster.read("bd", "points")  # typo'd database name


def test_read_as_pairs_propagates_unknown_set(cluster):
    with pytest.raises(StorageError):
        cluster.read("db", "no_such_set", as_pairs=True)


def test_read_known_set_still_works(cluster):
    assert sorted(h.pid for h in cluster.read("db", "points")) == \
        list(range(10))


def test_python_value_outputs_still_gathered_after_execution(cluster):
    class Small(SelectionComp):
        def get_selection(self, arg):
            return lambda_from_member(arg, "x") < 3.0

        def get_projection(self, arg):
            from repro.core import lambda_from_native

            return lambda_from_native([arg], lambda p: p.pid)

    writer = Writer("db", "small").set_input(
        Small().set_input(ObjectReader("db", "points"))
    )
    cluster.execute_computations(writer)
    assert sorted(cluster.read("db", "small")) == [0, 1, 2]


def test_unknown_join_source_keeps_default_build_side(cluster):
    """The join-planning size probe tolerates a storage-lookup miss on
    one input (keeps the default build side) instead of crashing — but
    only for lookup errors, not arbitrary exceptions."""
    from repro.core import JoinComp, lambda_from_native
    from repro.tcap.compiler import compile_computations

    class PidJoin(JoinComp):
        def get_selection(self, a, b):
            return lambda_from_member(a, "pid") == \
                lambda_from_member(b, "pid")

        def get_projection(self, a, b):
            return lambda_from_native([a, b], lambda x, y: (x.pid, y.pid))

    join = PidJoin() \
        .set_input(0, ObjectReader("db", "points")) \
        .set_input(1, ObjectReader("db", "never_loaded"))
    program = compile_computations(Writer("db", "out").set_input(join))
    overrides = cluster._choose_build_sides(program)
    assert overrides == {}
