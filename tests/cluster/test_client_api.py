"""Tests for the redesigned client API.

``cluster.read(...)`` is the one read entry point (``as_pairs=True``
merges aggregation outputs); ``Computation.execute(cluster)`` is the
fluent execution entry; and the loader context manager discards its open
block when the body raises.  The deprecated ``scan`` /
``read_aggregate_set`` shims have been removed.
"""

import pytest

from repro.cluster import PCCluster
from repro.core import AggregateComp, ObjectReader, Writer, lambda_from_member
from repro.memory import Float64, Int32, Int64, PCObject


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]


class SumX(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


@pytest.fixture
def cluster(tmp_path):
    cluster = PCCluster(n_workers=2, page_size=1 << 12,
                        spill_root=str(tmp_path))
    cluster.create_database("db")
    cluster.create_set("db", "points", Point)
    with cluster.loader("db", "points") as load:
        for i in range(40):
            load.append(Point, pid=i, cluster_id=i % 4, x=float(i))
    return cluster


def _expected():
    sums = {}
    for i in range(40):
        sums[i % 4] = sums.get(i % 4, 0.0) + float(i)
    return sums


def _run_aggregation(cluster):
    agg = SumX().set_input(ObjectReader("db", "points"))
    log = Writer("db", "sums").set_input(agg).execute(cluster)
    return agg, log


def test_fluent_execute_returns_the_job_log(cluster):
    _agg, log = _run_aggregation(cluster)
    assert log is cluster.last_job_log
    assert [stage.kind for stage in log]


def test_read_objects_and_pairs(cluster):
    agg, _log = _run_aggregation(cluster)
    pids = sorted(h.pid for h in cluster.read("db", "points"))
    assert pids == list(range(40))
    assert cluster.read("db", "sums", as_pairs=True, comp=agg) == _expected()


def test_removed_shims_are_gone(cluster):
    assert not hasattr(cluster, "scan")
    assert not hasattr(cluster, "read_aggregate_set")


def test_new_read_api_does_not_warn(cluster):
    import warnings

    agg, _log = _run_aggregation(cluster)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cluster.read("db", "points")
        cluster.read("db", "sums", as_pairs=True, comp=agg)


def test_loader_discards_open_block_when_body_raises(cluster):
    before = cluster.storage_manager.total_objects("db", "points")
    shipped_before = cluster.network.stats()["messages"]
    with pytest.raises(RuntimeError, match="interrupted"):
        with cluster.loader("db", "points") as load:
            load.append(Point, pid=999, cluster_id=0, x=1.0)
            raise RuntimeError("client interrupted mid-load")
    # The half-built page was dropped, not shipped.
    assert load.objects_discarded == 1
    assert load.pages_shipped == 0
    assert cluster.network.stats()["messages"] == shipped_before
    assert cluster.storage_manager.total_objects("db", "points") == before
    assert all(h.pid != 999 for h in cluster.read("db", "points"))
