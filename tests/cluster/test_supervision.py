"""Supervision-layer tests: heartbeats, deadlines, and shm hygiene.

DESIGN §13: the process transport's workers are real OS processes, so
their failures are real too — SIGKILL, wedges, SIGSTOP — and none of
them raise a Python exception anywhere.  These tests pin the supervision
contract: heartbeats classify workers ALIVE/SUSPECT/DEAD with real
signals driving the transitions, a SUSPECT (lagging but alive) worker's
task completes exactly once, the hard-death path funnels into the same
re-fork + retry machinery as injected crashes, RetryPolicy.timeout_s is
enforced on a *real* wall clock (the seed's dead code on this
transport), and shared-memory segments stranded by kill -9 are reaped
by the journaled registry on the next startup/recover().
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.cluster import FakeClock, FaultInjector, PCCluster
from repro.cluster.supervisor import ALIVE, DEAD, SUSPECT, Supervisor
from repro.cluster.transport import _ChildProcess, remote_available
from repro.errors import TaskDeadlineError, WorkerCrashError
from repro.obs import MetricsRegistry
from repro.storage.shm_registry import ShmRegistry, pid_alive, unlink_segment

from test_fault_tolerance import (
    expected_sums,
    fast_policy,
    load_points,
    make_cluster,
    run_aggregation,
)

needs_process = pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _dead_pid():
    """A pid guaranteed to name no live process (spawned, then reaped)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def make_process_cluster(tmp_path, subdir, policy=None, n_workers=3):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    return PCCluster(
        n_workers=n_workers, page_size=1 << 12, spill_root=str(root),
        retry_policy=policy, transport="process",
    )


# -- the heartbeat state machine, driven by real signals ------------------------------


def test_supervisor_states_follow_real_signals():
    child = _ChildProcess()
    supervisor = Supervisor(
        metrics=MetricsRegistry(), beat_interval_s=0.05, suspect_beats=4,
        dead_after_s=30.0,  # DEAD must not trigger in this test
    )
    try:
        supervisor.watch("w0", child)
        assert _wait_until(lambda: supervisor.vitals("w0").beats > 0)
        vitals = supervisor.vitals("w0")
        assert vitals.state == ALIVE
        assert vitals.pid == child.pid
        assert supervisor.poll() == {"w0": ALIVE}

        os.kill(child.pid, signal.SIGSTOP)
        try:
            # > suspect_beats * interval of silence: lagging, not dead.
            assert _wait_until(
                lambda: supervisor.vitals("w0").state == SUSPECT
            )
        finally:
            os.kill(child.pid, signal.SIGCONT)
        # Beats resume and the worker comes back without intervention.
        assert _wait_until(lambda: supervisor.vitals("w0").state == ALIVE)

        snapshot = supervisor.metrics.snapshot()
        assert snapshot.value("pc_sup_beats_total") > 0
        assert snapshot.value("pc_sup_suspects_total") >= 1
        assert snapshot.value("pc_sup_deaths_total") == 0

        supervisor.unwatch("w0", child)
        assert supervisor.poll() == {}
    finally:
        child.stop()


def test_supervisor_declares_silent_worker_dead_and_kills_it():
    child = _ChildProcess()
    supervisor = Supervisor(
        metrics=MetricsRegistry(), beat_interval_s=0.05, suspect_beats=2,
        dead_after_s=0.4,
    )
    try:
        supervisor.watch("w0", child)
        assert _wait_until(lambda: supervisor.vitals("w0").beats > 0)
        os.kill(child.pid, signal.SIGSTOP)
        # The DEAD verdict SIGKILLs; a stopped process dies from it
        # without ever needing a SIGCONT (SIGKILL is not maskable).
        assert _wait_until(
            lambda: supervisor.enforce("w0", child) is not None
        )
        assert supervisor.state("w0") == DEAD
        assert _wait_until(lambda: not child.healthy())
        snapshot = supervisor.metrics.snapshot()
        assert snapshot.value("pc_sup_deaths_total") == 1
    finally:
        child.stop()


def test_never_beaten_child_is_judged_by_spawn_grace_not_dead_line():
    # A spawned child imports the interpreter's world before its first
    # beat; under load that takes far longer than dead_after_s.  Only
    # the (much longer) spawn grace may condemn a never-beaten child.
    clock = FakeClock()

    class _Importing:
        heartbeat = [0.0] * 5  # zeroed slot: no beat yet
        started_at = 0.0
        pid = 1 << 30

    kills = []
    supervisor = Supervisor(
        metrics=MetricsRegistry(), beat_interval_s=0.05, suspect_beats=2,
        dead_after_s=0.4, spawn_grace_s=10.0, clock=lambda: clock.now,
        kill=lambda pid: kills.append(pid),
    )
    supervisor.watch("w0", _Importing())
    clock.now = 5.0  # way past dead_after_s, still inside the grace
    assert supervisor.vitals("w0").state != DEAD
    assert kills == []
    clock.now = 10.5  # past the grace: the import is genuinely wedged
    assert supervisor.vitals("w0").state == DEAD
    snapshot = supervisor.metrics.snapshot()
    assert snapshot.value("pc_sup_deaths_total") == 1


def test_enforce_kills_at_the_task_deadline_and_marks_timeout():
    child = _ChildProcess()
    kills = []
    supervisor = Supervisor(
        metrics=MetricsRegistry(), beat_interval_s=0.05,
        dead_after_s=30.0, kill=lambda pid: kills.append(pid),
    )
    try:
        supervisor.watch("w0", child)
        # Deadline in the future: no verdict, nothing killed.
        assert supervisor.enforce(
            "w0", child, deadline=time.monotonic() + 60, timeout_s=60.0
        ) is None
        assert kills == []
        # Deadline passed: killed, and the verdict says *timeout*.
        verdict = supervisor.enforce(
            "w0", child, deadline=time.monotonic() - 0.01, timeout_s=0.5
        )
        assert verdict is not None
        reason, deadline_exceeded = verdict
        assert deadline_exceeded is True
        assert "0.500s" in reason
        assert kills == [child.pid]
        snapshot = supervisor.metrics.snapshot()
        assert snapshot.value("pc_sup_deadline_kills_total") == 1
    finally:
        child.stop()


# -- SIGKILL mid-job: real death -> re-fork -> retry -> identical result --------------


@needs_process
def test_sigkilled_backend_recovers_like_an_injected_crash(tmp_path):
    clean = make_cluster(tmp_path, "clean")
    load_points(clean)
    baseline = run_aggregation(clean)
    clean.close()

    cluster = make_process_cluster(
        tmp_path, "killed", policy=fast_policy(FakeClock())
    )
    load_points(cluster)
    victim = cluster.workers[1]
    os.kill(victim.backend.child_pid, signal.SIGKILL)
    result = run_aggregation(cluster)
    assert result == baseline == expected_sums()
    # The real death took the same recovery path an injected crash does.
    assert victim.refork_count >= 1
    snapshot = cluster.metrics()
    assert snapshot.value("pc_faults_backend_crashes_total") >= 1
    # Detect -> re-fork latency landed in the supervision histogram.
    assert snapshot.quantile("pc_sup_recovery_seconds", 0.5) is not None
    assert cluster.supervisor.recovery_quantile(0.99) is not None
    cluster.close()


# -- SUSPECT dispatch: lagging but alive must never double-execute --------------------


@needs_process
def test_dispatch_to_suspect_worker_completes_exactly_once(tmp_path):
    clean = make_cluster(tmp_path, "clean")
    load_points(clean)
    baseline = run_aggregation(clean)
    clean.close()

    cluster = make_process_cluster(tmp_path, "stopped")
    load_points(cluster)
    victim = cluster.workers[0]
    pid = victim.backend.child_pid
    # Freeze the worker — long enough to go heartbeat-stale, well short
    # of the DEAD deadline — while the job runs against it.
    os.kill(pid, signal.SIGSTOP)
    resumer = threading.Timer(0.4, os.kill, args=(pid, signal.SIGCONT))
    resumer.start()
    try:
        result = run_aggregation(cluster)
    finally:
        resumer.join()
        try:
            os.kill(pid, signal.SIGCONT)  # idempotent safety net
        except ProcessLookupError:
            pass
    # An aggregation double-executed on resume would inflate the sums;
    # exact equality proves the task ran exactly once.
    assert result == baseline == expected_sums()
    assert victim.refork_count == 0  # never killed, never re-forked
    snapshot = cluster.metrics()
    assert snapshot.value("pc_sup_deaths_total") == 0
    assert snapshot.value("pc_sup_deadline_kills_total") == 0
    cluster.close()


# -- satellite: RetryPolicy.timeout_s enforced on a real wall clock -------------------


@needs_process
def test_wedged_task_is_killed_at_its_real_deadline(tmp_path):
    # Seed regression: timeout_s only ever fired through the injectable
    # policy clock, which nothing advances on the process transport —
    # the FakeClock here never ticks, so only the *real* wall-clock
    # deadline can declare this timeout.
    clock = FakeClock()
    policy = fast_policy(
        clock, timeout_s=0.5, max_attempts=1,
        blacklist_on_exhaustion=True, min_surviving_workers=1,
    )
    cluster = make_process_cluster(tmp_path, "wedged", policy=policy)
    # The deadline, not heartbeat death, must be what kills the wedge.
    cluster.supervisor.dead_after_s = 60.0
    load_points(cluster)
    victim = cluster.workers[2]
    os.kill(victim.backend.child_pid, signal.SIGSTOP)  # a real wedge
    result = run_aggregation(cluster)
    assert result == expected_sums()
    assert clock.now == 0.0  # the injectable clock never advanced
    assert victim.worker_id in cluster.blacklist
    snapshot = cluster.metrics()
    assert snapshot.value("pc_sup_deadline_kills_total") >= 1
    # The failure was booked as a timeout, not as exhausted retries.
    assert any(
        "task timeout" in (span.detail or "")
        for span in cluster.last_trace.spans(kind="fault")
    )
    cluster.close()


def test_task_deadline_error_is_a_crash_with_timeout_verdict():
    error = TaskDeadlineError("too slow")
    assert isinstance(error, WorkerCrashError)
    assert error.deadline_exceeded is True
    assert getattr(WorkerCrashError("x"), "deadline_exceeded", False) is False


def test_sim_timeout_still_fires_through_injectable_clock(tmp_path):
    # The sim leg keeps its deterministic clock: backoff sleeps advance
    # FakeClock past timeout_s with no real time passing, and the
    # blacklist reason still reads "task timeout".
    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-1", times=99)
    policy = fast_policy(
        clock, timeout_s=0.005, max_attempts=5,
        blacklist_on_exhaustion=True,
    )
    cluster = make_cluster(tmp_path, "sim", injector=injector, policy=policy)
    load_points(cluster)
    result = run_aggregation(cluster)
    assert result == expected_sums()
    assert "worker-1" in cluster.blacklist
    assert any(
        "task timeout" in (span.detail or "")
        for span in cluster.last_trace.spans(kind="fault")
    )


# -- shm registry: journaled create/unlink + orphan reaping ---------------------------


def test_shm_registry_roundtrip_and_compaction(tmp_path):
    path = str(tmp_path / "shm.registry")
    registry = ShmRegistry(path)
    registry.note_create("seg-a")
    registry.note_create("seg-b")
    registry.note_unlink("seg-a")
    assert registry.live == {"seg-b": os.getpid()}
    registry.compact()
    registry.close()
    # A fresh replay sees exactly the still-live records.
    replayed = ShmRegistry(path)
    assert replayed.live == {"seg-b": os.getpid()}
    # Live owner (this process): sweep must not touch it.
    assert replayed.sweep_orphans() == 0
    replayed.close()


def test_shm_registry_tolerates_torn_final_line(tmp_path):
    path = str(tmp_path / "shm.registry")
    registry = ShmRegistry(path)
    registry.note_create("seg-a")
    registry.close()
    with open(path, "a") as f:
        f.write('{"op": "unlink", "name": "seg-a"')  # killed mid-append
    replayed = ShmRegistry(path)
    # The torn unlink is dropped; over-reporting a create is the safe
    # direction (the sweep's pid check decides what actually happens).
    assert "seg-a" in replayed.live
    replayed.close()


def test_sweep_reaps_segment_stranded_by_kill_minus_nine(tmp_path):
    from multiprocessing import shared_memory

    path = str(tmp_path / "shm.registry")
    # A child process creates + registers a real segment, then dies by
    # SIGKILL — no destructor, no atexit, no resource tracker runs.
    code = (
        "import os, signal, sys\n"
        "sys.path.insert(0, %r)\n"
        "from multiprocessing import shared_memory, resource_tracker\n"
        "from repro.storage.shm_registry import ShmRegistry\n"
        "seg = shared_memory.SharedMemory(create=True, size=4096)\n"
        "resource_tracker.unregister(seg._name, 'shared_memory')\n"
        "registry = ShmRegistry(%r)\n"
        "registry.note_create(seg.name)\n"
        "print(seg.name, flush=True)\n"
        "os.kill(os.getpid(), signal.SIGKILL)\n"
    ) % (SRC_DIR, path)
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        timeout=60,
    )
    name = out.stdout.strip()
    assert name, out.stderr
    # The orphan exists in /dev/shm, stranded by the hard kill...
    probe = shared_memory.SharedMemory(name=name)
    probe.close()
    registry = ShmRegistry(path)
    assert name in registry.live
    assert not pid_alive(registry.live[name])
    # ...until the next startup replays the journal and reaps it.
    assert registry.sweep_orphans() == 1
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    # Repeated sweeps are clean: the unlink was journaled + compacted.
    assert registry.sweep_orphans() == 0
    assert registry.live == {}
    registry.close()
    assert unlink_segment(name) is False  # already gone


@needs_process
def test_cluster_startup_sweeps_previous_runs_orphans(tmp_path):
    from multiprocessing import resource_tracker, shared_memory

    root = tmp_path / "crashed"
    root.mkdir()
    # Simulate a previous hard-killed run under this spill root: an
    # orphaned segment whose registry record names a pid that no longer
    # exists (the killed "previous master").
    orphan = shared_memory.SharedMemory(create=True, size=4096)
    orphan_name = orphan.name
    resource_tracker.unregister(orphan._name, "shared_memory")
    orphan.close()
    with open(os.path.join(str(root), "shm.registry"), "w") as f:
        f.write(json.dumps(
            {"op": "create", "name": orphan_name, "pid": _dead_pid()}
        ) + "\n")

    cluster = PCCluster(
        n_workers=2, page_size=1 << 12, spill_root=str(root),
        transport="process",
    )
    # __init__ swept before any pool opened: the orphan is gone.
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=orphan_name)
    assert cluster.shm_registry.segments_reaped == 1
    # The cluster itself works normally on the swept root.
    load_points(cluster, n=50)
    assert run_aggregation(cluster) == expected_sums(n=50)
    assert cluster.recover() > 0  # replay + re-sweep: nothing else reaped
    assert cluster.shm_registry.segments_reaped == 1
    assert len(cluster.read("db", "points")) == 50
    cluster.close()
    # A clean shutdown leaves no segment behind to reap later.
    assert cluster.shm_registry.live == {}


# -- columnar recover() crash-tested on the process transport -------------------------


@needs_process
def test_columnar_recover_after_master_crash_on_process_transport(tmp_path):
    pytest.importorskip("numpy")
    from repro.schema import f64, i64

    root = tmp_path / "columnar"
    root.mkdir()
    cluster = PCCluster(
        n_workers=3, page_size=1 << 12, spill_root=str(root),
        transport="process",
    )
    cluster.create_database("db")
    cluster.create_set(
        "db", "points", schema=[("cluster_id", i64), ("x", f64)],
        replication=2,
    )
    with cluster.loader("db", "points") as load:
        for i in range(200):
            load.append(cluster_id=i % 4, x=float(i))
    before = sorted(r.as_tuple() for r in cluster.read("db", "points"))
    assert len(before) == 200

    # Master crash: in-memory DDL + replica map discarded, then rebuilt
    # from the journal — layout and schema must replay for columnar sets.
    applied = cluster.recover()
    assert applied > 0
    meta = cluster.catalog.set_metadata("db", "points")
    assert meta.layout == "columnar"
    assert meta.schema is not None
    assert meta.schema.names() == ["cluster_id", "x"]
    after = sorted(r.as_tuple() for r in cluster.read("db", "points"))
    assert after == before
    cluster.close()
