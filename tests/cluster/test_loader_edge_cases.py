"""Edge-case tests for the client-side bulk loader (ClusterLoader)."""

import pytest

from repro.cluster import PCCluster
from repro.errors import StorageError
from repro.memory import Float64, Int32, PCObject, String, VectorType


class Wide(PCObject):
    fields = [("pid", Int32), ("name", String), ("xs", VectorType(Float64))]


@pytest.fixture
def cluster(tmp_path):
    return PCCluster(n_workers=2, page_size=1 << 12,
                     spill_root=str(tmp_path))


def _setup(cluster):
    cluster.create_database("db")
    cluster.create_set("db", "wide", Wide)


def test_object_larger_than_empty_page_raises(cluster):
    _setup(cluster)
    with pytest.raises(StorageError, match="does not fit"):
        with cluster.loader("db", "wide") as load:
            # ~16 KB of vector payload can never fit a 4 KB page; this
            # must fail fast, not retry forever.
            load.append(Wide, pid=0, name="big", xs=[1.0] * 2048)


def test_flush_on_unused_loader_is_a_noop(cluster):
    _setup(cluster)
    with cluster.loader("db", "wide") as load:
        pass  # never appended anything
    assert load.pages_shipped == 0
    assert load.objects_loaded == 0
    assert cluster.network.stats()["messages"] == 0
    assert cluster.storage_manager.total_objects("db", "wide") == 0

    # Explicit double-flush after the context exit is also a no-op.
    load.flush()
    assert load.pages_shipped == 0


def test_partial_page_ships_exactly_once(cluster):
    _setup(cluster)
    with cluster.loader("db", "wide") as load:
        for i in range(3):  # far less than one page's worth
            load.append(Wide, pid=i, name="n%d" % i, xs=[float(i)])
        load.flush()  # ships the partial page...
        shipped_after_flush = load.pages_shipped
        load.flush()  # ...and flushing again must not re-ship it
    assert shipped_after_flush == 1
    assert load.pages_shipped == 1  # context-exit flush shipped nothing new
    assert cluster.network.stats()["messages"] == 1
    assert cluster.storage_manager.total_objects("db", "wide") == 3
    values = sorted(h.pid for h in cluster.read("db", "wide"))
    assert values == [0, 1, 2]


def test_loading_resumes_after_a_flush(cluster):
    _setup(cluster)
    with cluster.loader("db", "wide") as load:
        load.append(Wide, pid=0, name="a", xs=[0.0])
        load.flush()
        load.append(Wide, pid=1, name="b", xs=[1.0])
    assert load.pages_shipped == 2
    assert cluster.storage_manager.total_objects("db", "wide") == 2
