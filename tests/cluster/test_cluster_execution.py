"""End-to-end tests of the simulated distributed runtime."""

import pytest

from repro.cluster import PCCluster, RetryPolicy
from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.errors import ExecutionError
from repro.memory import Float64, Int32, Int64, PCObject, String


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]

    def get_cluster(self):
        return self.cluster_id


class Label(PCObject):
    fields = [("cluster_id", Int32), ("label", String)]


class SumX(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


@pytest.fixture
def cluster(tmp_path):
    return PCCluster(
        n_workers=3, page_size=1 << 12, spill_root=str(tmp_path)
    )


def _load_points(cluster, n=200):
    cluster.create_database("db")
    cluster.create_set("db", "points", Point)
    with cluster.loader("db", "points") as load:
        for i in range(n):
            load.append(Point, pid=i, cluster_id=i % 4, x=float(i))
    return n


def test_loader_round_robins_pages(cluster):
    # Enough rows to span several pages in either page layout (the
    # columnar struct-of-arrays packing fits ~16 bytes/row here, so 200
    # rows would seal just one page).
    n = _load_points(cluster, n=900)
    total = cluster.storage_manager.total_objects("db", "points")
    assert total == n
    per_worker = [
        len(w.storage.get_set("db", "points")) for w in cluster.workers
    ]
    assert sum(per_worker) == n
    assert all(count > 0 for count in per_worker)
    # Pages moved as zero-copy bytes.
    assert cluster.network.bytes_zero_copy > 0


def test_distributed_aggregation_with_map_shuffle(cluster):
    _load_points(cluster)
    reader = ObjectReader("db", "points")
    agg = SumX().set_input(reader)
    writer = Writer("db", "sums").set_input(agg)
    cluster.execute_computations(writer)

    result = cluster.read("db", "sums", as_pairs=True, comp=agg)
    expected = {}
    for i in range(200):
        expected[i % 4] = expected.get(i % 4, 0.0) + float(i)
    assert result == expected
    # The shuffle carried PC Map pages (zero-copy), per Figure 5.
    kinds = [stage.kind for stage in cluster.last_job_log]
    assert "AggregationJobStage" in kinds


def test_distributed_selection_writes_pc_objects(cluster):
    _load_points(cluster)

    class HighX(SelectionComp):
        def get_selection(self, arg):
            return lambda_from_member(arg, "x") > 150.0

        def get_projection(self, arg):
            from repro.memory import make_object

            return lambda_from_native([arg], lambda p: make_object(
                Point, pid=p.pid, cluster_id=p.cluster_id, x=p.x
            ))

    reader = ObjectReader("db", "points")
    sel = HighX().set_input(reader)
    Writer("db", "high").set_input(sel).execute(cluster)
    values = sorted(h.pid for h in cluster.read("db", "high"))
    assert values == list(range(151, 200))


def test_distributed_join_broadcast_and_partition(cluster):
    _load_points(cluster, n=60)
    cluster.create_set("db", "labels", Label)
    with cluster.loader("db", "labels") as load:
        for c in range(4):
            load.append(Label, cluster_id=c, label="L%d" % c)

    class LabelJoin(JoinComp):
        def get_selection(self, label, point):
            return lambda_from_member(label, "cluster_id") == \
                lambda_from_member(point, "cluster_id")

        def get_projection(self, label, point):
            return lambda_from_native(
                [label, point], lambda lab, p: (p.pid, lab.label)
            )

    def run(threshold):
        cluster.broadcast_threshold = threshold
        cluster.clear_set("db", "joined") if (
            ("db", "joined") in cluster.storage_manager
        ) else None
        reader_l = ObjectReader("db", "labels")
        reader_p = ObjectReader("db", "points")
        join = LabelJoin().set_input(0, reader_l).set_input(1, reader_p)
        writer = Writer("db", "joined").set_input(join)
        cluster.execute_computations(writer)
        return sorted(cluster.read("db", "joined"))

    broadcast_result = run(threshold=1 << 30)
    partition_result = run(threshold=0)
    expected = sorted((i, "L%d" % (i % 4)) for i in range(60))
    assert broadcast_result[:60] == expected or broadcast_result == expected
    # Partition mode appends to the same python output store; compare tails.
    assert partition_result[-60:] == expected


def test_worker_backend_refork_on_crash(tmp_path):
    # Retries disabled: one crash means one re-fork and a permanent
    # ExecutionError naming the stage and worker.
    cluster = PCCluster(
        n_workers=3, page_size=1 << 12, spill_root=str(tmp_path),
        retry_policy=RetryPolicy.disabled(),
    )
    _load_points(cluster, n=10)

    class Exploding(SelectionComp):
        def get_projection(self, arg):
            def boom(p):
                raise RuntimeError("user code bug")

            return lambda_from_native([arg], boom)

    reader = ObjectReader("db", "points")
    writer = Writer("db", "out").set_input(Exploding().set_input(reader))
    before = [w.refork_count for w in cluster.workers]
    with pytest.raises(ExecutionError, match="worker-0"):
        cluster.execute_computations(writer)
    after = [w.refork_count for w in cluster.workers]
    assert sum(after) == sum(before) + 1
    # The front-end survived: storage is still readable.
    assert cluster.storage_manager.total_objects("db", "points") == 10


def test_deterministic_bug_exhausts_default_retries(cluster):
    # The default policy retries; a deterministic user-code bug crashes
    # every attempt, so the job fails with the chained crash as cause.
    _load_points(cluster, n=10)

    class Exploding(SelectionComp):
        def get_projection(self, arg):
            def boom(p):
                raise RuntimeError("user code bug")

            return lambda_from_native([arg], boom)

    reader = ObjectReader("db", "points")
    writer = Writer("db", "out").set_input(Exploding().set_input(reader))
    with pytest.raises(ExecutionError, match="retries exhausted"):
        cluster.execute_computations(writer)
    attempts = cluster.retry_policy.max_attempts
    assert sum(w.refork_count for w in cluster.workers) == attempts
