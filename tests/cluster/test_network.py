"""Tests for the simulated network's byte accounting and stats surface."""

import json

from repro.cluster.network import SimulatedNetwork, estimate_value_bytes
from repro.obs import Tracer


def test_stats_split_zero_copy_and_row_traffic():
    net = SimulatedNetwork()
    net.ship_page("client", "worker-0", b"x" * 1000)
    net.ship_rows("worker-0", "worker-1", [(1, "a"), (2, "b")])
    stats = net.stats()
    assert stats["messages"] == 2
    assert stats["bytes_zero_copy"] == 1000
    assert stats["bytes_rows"] == estimate_value_bytes((1, "a")) + \
        estimate_value_bytes((2, "b"))
    assert stats["bytes_total"] == \
        stats["bytes_zero_copy"] + stats["bytes_rows"]


def test_stats_surface_per_link_breakdown():
    """by_link was tracked but never surfaced: skewed shuffle partners
    were invisible in cluster.stats()."""
    net = SimulatedNetwork()
    net.ship_page("client", "worker-0", b"x" * 100)
    net.ship_page("client", "worker-0", b"y" * 50)
    net.ship_rows("worker-0", "worker-1", [(1,)])
    stats = net.stats()
    assert stats["by_link"]["client->worker-0"] == 150
    assert stats["by_link"]["worker-0->worker-1"] == \
        estimate_value_bytes((1,))
    assert sum(stats["by_link"].values()) == stats["bytes_total"]
    # The breakdown must be JSON-serializable (string keys, int values).
    assert json.loads(json.dumps(stats["by_link"])) == stats["by_link"]


def test_reset_clears_links_too():
    net = SimulatedNetwork()
    net.ship_page("a", "b", b"pq")
    net.reset()
    stats = net.stats()
    assert stats["bytes_total"] == 0
    assert stats["by_link"] == {}


def test_transfers_report_into_the_active_span():
    tracer = Tracer()
    net = SimulatedNetwork(tracer=tracer)
    net.ship_page("a", "b", b"x" * 7)  # outside any span: global only
    with tracer.span("job", kind="job"):
        net.ship_page("worker-0", "worker-1", b"x" * 10)
        net.ship_rows("worker-1", "worker-0", [(1, 2)])
    totals = tracer.last_trace.totals()
    assert totals["net.bytes_zero_copy"] == 10
    assert totals["net.bytes_rows"] == estimate_value_bytes((1, 2))
    assert totals["net.link.worker-0->worker-1"] == 10
    assert "net.link.a->b" not in totals
    assert net.bytes_zero_copy == 17  # globals still cover everything


def test_mutating_returned_by_link_does_not_corrupt_accounting():
    """stats()["by_link"] and net.by_link are views, not internal state."""
    net = SimulatedNetwork()
    net.ship_page("client", "worker-0", b"x" * 100)

    stats = net.stats()
    stats["by_link"]["client->worker-0"] = 999999
    stats["by_link"]["attacker->victim"] = 1
    assert net.stats()["by_link"] == {"client->worker-0": 100}

    live = net.by_link
    live[("client", "worker-0")] += 500
    live[("made", "up")] = 7
    assert net.by_link == {("client", "worker-0"): 100}
    assert net.stats()["bytes_total"] == 100
