"""Acceptance tests for distributed tracing across process boundaries.

The PR 9 bar (DESIGN §14): on ``transport="process"`` the merged job
trace must contain spans recorded *inside* every back-end child — task
and operator spans carrying the child's real pid, shifted into the
coordinator's clock with an error bounded by the heartbeat handshake —
and a worker killed mid-task must still contribute evidence: truncated
spans plus a flight-recorder dump, grafted from the error envelope or
synthesized post-mortem from the shared ring.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ChaosMonkey, PCCluster, RetryPolicy
from repro.cluster.supervisor import DEFAULT_BEAT_INTERVAL_S
from repro.cluster.transport import remote_available
from repro.core import AggregateComp, ObjectReader, SelectionComp, \
    Writer, lambda_from_member, lambda_from_native
from repro.errors import ExecutionError
from repro.memory import Float64, Int32, Int64, PCObject
from repro.obs import validate_chrome_trace, to_chrome_trace
from repro.obs.tracer import Span, Trace, Tracer
from repro.tpch import TpchSpec, customers_per_supplier_pc, \
    load_pc_customers

needs_process = pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)

TPCH_SPEC = TpchSpec(n_customers=30, n_parts=40, n_suppliers=6, seed=11)


def _tpch_cluster(tmp_path, subdir, policy=None):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    cluster = PCCluster(
        n_workers=3, page_size=1 << 14, spill_root=str(root),
        transport="process", retry_policy=policy,
    )
    load_pc_customers(cluster, TPCH_SPEC, replication=2)
    return cluster


# -- remote spans in the merged trace ---------------------------------------------


@needs_process
def test_merged_trace_has_spans_from_every_worker_pid(tmp_path):
    cluster = _tpch_cluster(tmp_path, "merge")
    try:
        customers_per_supplier_pc(cluster)
        trace = cluster.last_trace
        child_pids = {w.backend.child_pid for w in cluster.workers}
        remote_pids = {s.pid for s in trace.spans() if s.pid is not None}
        # Every worker's back-end child contributed spans.
        assert remote_pids == child_pids
        assert len(remote_pids) == 3

        remote_tasks = [s for s in trace.spans(kind="task")
                        if s.pid is not None]
        assert remote_tasks
        for task in remote_tasks:
            # Grafted under the coordinator's task span for that dispatch.
            assert task.parent_id is not None
            assert task.end is not None and task.duration_s >= 0
            assert not task.truncated  # clean run: nothing was cut short
        # Operator spans recorded inside the children, with row counts.
        ops = [s for s in trace.spans(kind="op") if s.pid is not None]
        assert ops
        assert any(op.counters.get("op.rows_in", 0) > 0 for op in ops)
        assert {op.name for op in ops} & {"apply", "filter", "hash"}
    finally:
        cluster.close()


@needs_process
def test_clock_alignment_error_is_bounded_by_the_handshake(tmp_path):
    cluster = _tpch_cluster(tmp_path, "clock")
    try:
        customers_per_supplier_pc(cluster)
        trace = cluster.last_trace
        root = trace.root
        errors = [s.counters["trace.clock_error_s"]
                  for s in trace.spans(kind="task")
                  if "trace.clock_error_s" in s.counters]
        assert errors  # the handshake ran and its bound was recorded
        for error_s in errors:
            assert 0 < error_s <= DEFAULT_BEAT_INTERVAL_S + 1e-9
        # Aligned means contained: every remote span's window must land
        # inside the job span (both clocks are CLOCK_MONOTONIC here, so
        # a graft without calibration would still pass — the bound above
        # is what pins the general case).
        for span in trace.spans():
            if span.pid is not None:
                assert span.start >= root.start - DEFAULT_BEAT_INTERVAL_S
                assert span.end <= root.end + DEFAULT_BEAT_INTERVAL_S
    finally:
        cluster.close()


@needs_process
def test_remote_counters_still_replay_into_cluster_metrics(tmp_path):
    cluster = _tpch_cluster(tmp_path, "metrics")
    try:
        customers_per_supplier_pc(cluster)
        # Reading vitals publishes each child's heartbeat row counter.
        for worker in cluster.workers:
            cluster.supervisor.vitals(worker.worker_id)
        snapshot = cluster.metrics()
        assert snapshot.value("pc_trace_remote_spans_total") > 0
        rows_series = snapshot.labels("pc_sup_rows_consumed")
        assert {labels["worker"] for labels in rows_series} == {
            w.worker_id for w in cluster.workers
        }
        # And the trace mirrors the graft count on the job span.
        totals = cluster.last_trace.totals()
        assert totals.get("trace.remote_spans", 0) > 0
        assert totals.get("engine.rows_in", 0) > 0
    finally:
        cluster.close()


@needs_process
def test_merged_trace_exports_a_valid_chrome_timeline(tmp_path):
    cluster = _tpch_cluster(tmp_path, "chrome")
    try:
        customers_per_supplier_pc(cluster)
        payload = to_chrome_trace(cluster.last_trace)
        assert validate_chrome_trace(payload) == []
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "B"}
        assert 0 in pids  # the coordinator track
        assert len(pids) == 4  # plus one track per worker child
    finally:
        cluster.close()


@needs_process
def test_traces_ring_keeps_back_to_back_jobs(tmp_path):
    cluster = _tpch_cluster(tmp_path, "ring")
    try:
        assert cluster.traces() == []
        customers_per_supplier_pc(cluster)
        first = cluster.last_trace
        customers_per_supplier_pc(cluster)
        second = cluster.last_trace
        assert cluster.traces(1) == [second]
        assert cluster.traces(2) == [second, first]  # most recent first
        assert cluster.traces(99)[:2] == [second, first]
        # last_trace stays an alias for traces(1)[0].
        assert cluster.last_trace is cluster.traces(1)[0]
    finally:
        cluster.close()


# -- evidence from failed and killed workers ---------------------------------------


class PointD(PCObject):
    fields = [("pid", Int32), ("x", Float64)]


class SumXD(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "pid")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


@needs_process
def test_user_code_crash_ships_partial_spans_in_the_error_envelope(tmp_path):
    cluster = PCCluster(
        n_workers=3, page_size=1 << 13, spill_root=str(tmp_path),
        transport="process",
        retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                                 backoff_max_s=0.02),
    )
    try:
        cluster.create_database("db")
        cluster.create_set("db", "points", PointD)
        with cluster.loader("db", "points") as load:
            for i in range(64):
                load.append(PointD, pid=i, x=float(i))

        class Exploding(SelectionComp):
            def get_projection(self, arg):
                def boom(p):
                    raise RuntimeError("user code bug")

                return lambda_from_native([arg], boom)

        # Route through an aggregation: the pre-aggregation stage is the
        # shippable portion, so the projection blows up *in the child*.
        writer = Writer("db", "out").set_input(
            SumXD().set_input(
                Exploding().set_input(ObjectReader("db", "points"))
            )
        )
        with pytest.raises(ExecutionError):
            cluster.execute_computations(writer, job_name="doomed")

        trace = cluster.last_trace
        assert trace.root.name == "doomed"
        # The dying task's spans still shipped — truncated, with a pid.
        cut = [s for s in trace.spans() if s.truncated]
        assert cut
        assert any(s.pid is not None for s in cut)
        # Counters accumulated before the exception were not lost: the
        # scan consumed rows before the projection raised.
        assert trace.totals().get("engine.rows_in", 0) > 0
        # The job failed, so the master's flight ring was dumped onto
        # the job span: the crash recovery left its marks there.
        kinds = {event["kind"] for event in trace.root.events}
        assert kinds & {"worker.refork", "sched.retry"}
        # And the export stays loadable with truncated spans in it.
        assert validate_chrome_trace(to_chrome_trace(trace)) == []
    finally:
        cluster.close()


@needs_process
def test_chaos_killed_workers_still_contribute_trace_evidence(tmp_path):
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.01,
                         backoff_max_s=0.05)
    cluster = _tpch_cluster(tmp_path, "storm", policy=policy)
    baseline = None
    try:
        import time as _time

        monkey = ChaosMonkey(cluster, seed=7, kills=3, stops=1,
                             window_s=1.5)
        with monkey:
            horizon = _time.monotonic() + 2.2
            while _time.monotonic() < horizon:
                result = customers_per_supplier_pc(cluster)
                if baseline is None:
                    baseline = result
                assert result == baseline
        assert monkey.counts["kill"] == 3
        # Snapshot the master ring before further jobs can evict the
        # storm's marks (the ring is bounded by construction).
        master_kinds = {e["kind"] for e in cluster.flight.snapshot()}

        # Each completed job still merged spans from real children ...
        merged = [t for t in cluster.traces(16)
                  if any(s.pid is not None for s in t.spans())]
        assert merged
        # ... and at least one trace carries kill evidence: a truncated
        # span from a worker that died mid-task, with flight events
        # (the envelope's, or the shared ring's post-mortem dump).
        truncated = [
            span for trace in cluster.traces(16)
            for span in trace.spans() if span.truncated
        ]
        assert truncated
        evidence = [s for s in truncated if s.events or s.pid is not None]
        assert evidence
        flight_kinds = {
            event.get("kind")
            for trace in cluster.traces(16)
            for span in trace.spans()
            for event in span.events
        }
        assert flight_kinds  # some dump made it into the merged traces
        # Every trace in the ring still exports a loadable timeline.
        for trace in cluster.traces(16):
            assert validate_chrome_trace(to_chrome_trace(trace)) == []
        # The coordinator's own flight ring saw the storm and recovery.
        assert "chaos.signal" in master_kinds
        assert "worker.refork" in master_kinds
    finally:
        cluster.close()


# -- JSON round trip of remote-span traces (property) -------------------------------


span_kinds = st.sampled_from(["stage", "task", "op"])
counter_names = st.sampled_from(
    ["engine.rows_in", "op.rows_out", "net.bytes_total", "pool.pages_pinned"]
)
counters = st.dictionaries(counter_names, st.integers(0, 10 ** 9),
                           max_size=3)
event_dicts = st.lists(
    st.fixed_dictionaries({
        "seq": st.integers(1, 99),
        "ts": st.floats(0.0, 5.0, allow_nan=False).map(lambda v: round(v, 6)),
        "pid": st.integers(1, 99999),
        "kind": st.sampled_from(["task.dispatch", "chaos.signal",
                                 "sup.deadline_kill"]),
    }),
    max_size=3,
)


@st.composite
def span_trees(draw, depth=0):
    span = Span(draw(st.sampled_from(["scan", "agg", "task-1", "filter"])),
                kind=draw(span_kinds))
    span.start = draw(st.floats(0.0, 2.0, allow_nan=False)
                      .map(lambda v: round(v, 6)))
    span.end = span.start + draw(st.floats(0.0, 2.0, allow_nan=False)
                                 .map(lambda v: round(v, 6)))
    span.counters = draw(counters)
    span.pid = draw(st.one_of(st.none(), st.integers(1, 99999)))
    span.truncated = draw(st.booleans())
    span.events = draw(event_dicts)
    if depth < 2:
        span.children = draw(
            st.lists(span_trees(depth=depth + 1), max_size=3)
        )
    return span


@settings(max_examples=40, deadline=None)
@given(span_trees())
def test_remote_span_traces_round_trip_through_json(root):
    root.kind = "job"
    original = Trace(root)
    restored = Trace.from_json(original.to_json())

    # The round trip is a fixed point: re-serializing changes nothing.
    assert restored.to_json() == original.to_json()
    assert restored.totals() == original.totals()
    for got, want in zip(restored.root.walk(), original.root.walk()):
        assert got.name == want.name
        assert got.kind == want.kind
        assert got.pid == want.pid
        assert got.truncated == want.truncated
        assert got.counters == want.counters
        assert len(got.events) == len(want.events)
        for g_event, w_event in zip(got.events, want.events):
            assert g_event["kind"] == w_event["kind"]
            assert g_event["seq"] == w_event["seq"]
        assert got.duration_s == round(want.duration_s, 9)
        # Relative offsets survive (start anchored at the root).
        assert got.start == round(want.start - root.start, 9)


def test_abandon_marks_open_spans_truncated():
    tracer = Tracer()
    context = tracer.span("task-1", kind="task")
    span = context.__enter__()
    tracer.add("engine.rows_in", 17)
    trace = tracer.abandon()
    assert trace is not None
    assert trace.root is span
    assert span.truncated and span.end is not None
    assert span.counters == {"engine.rows_in": 17}
    assert tracer.active is None
    # The abandoned trace is reachable like a finished one.
    assert tracer.last_trace is trace
    assert tracer.recent_traces(1) == [trace]


@needs_process
def test_trace_context_is_propagated_into_task_specs(tmp_path):
    # Only shipped specs carry trace context (_remote_task returns None
    # for in-process back-ends), so this needs the process transport.
    cluster = PCCluster(n_workers=2, page_size=1 << 12,
                        spill_root=str(tmp_path), transport="process")
    try:
        cluster.create_database("db")
        cluster.create_set("db", "points", PointD)
        with cluster.loader("db", "points") as load:
            for i in range(32):
                load.append(PointD, pid=i, x=float(i))
        seen = []
        from repro.cluster import scheduler as scheduler_mod
        original = scheduler_mod.serialize_task

        def spy(spec):
            seen.append(dict(spec.get("trace_ctx") or {}))
            return original(spec)

        scheduler_mod.serialize_task = spy
        try:
            writer = Writer("db", "kept").set_input(
                SumXD().set_input(ObjectReader("db", "points"))
            )
            cluster.execute_computations(writer, job_name="ctx")
        finally:
            scheduler_mod.serialize_task = original
        assert seen
        trace_ids = {ctx.get("trace_id") for ctx in seen}
        assert trace_ids == {cluster.tracer.trace_id}
        assert all(ctx.get("parent_span_id") is not None for ctx in seen)
    finally:
        cluster.close()
