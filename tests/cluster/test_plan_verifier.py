"""Submit-time plan verification wired into the scheduler.

A schema-mismatched plan must die when the scheduler is constructed —
before any stage is planned or dispatched, with no partial sink output
— on both the simulated and the process transports; valid plans run
unchanged, and ``verify_plans=False`` is the escape hatch back to the
old die-inside-a-worker behavior.
"""

import pytest

from repro.cluster import PCCluster, RetryPolicy
from repro.cluster.transport import remote_available
from repro.core import (
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
)
from repro.errors import PCError, PlanTypeError, SetNotFoundError
from repro.schema import Schema, f64, i64

TRANSPORTS = [
    "sim",
    pytest.param(
        "process",
        marks=pytest.mark.skipif(
            not remote_available(), reason="cloudpickle unavailable"
        ),
    ),
]

POINT_SCHEMA = Schema([("pid", i64), ("x", f64)])


class GoodSelection(SelectionComp):
    def get_selection(self, arg):
        return lambda_from_member(arg, "x") > 10.0

    def get_projection(self, arg):
        return lambda_from_member(arg, "x")


class MistypedSelection(SelectionComp):
    """Names a column the points schema does not have."""

    def get_selection(self, arg):
        return lambda_from_member(arg, "z") > 10.0

    def get_projection(self, arg):
        return lambda_from_member(arg, "x")


def make_cluster(tmp_path, subdir, transport, **kwargs):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    return PCCluster(n_workers=2, page_size=1 << 12, spill_root=str(root),
                     transport=transport, **kwargs)


def _load_points(cluster, n=64):
    cluster.create_database("db")
    cluster.create_set("db", "points", schema=POINT_SCHEMA)
    with cluster.loader("db", "points") as load:
        for i in range(n):
            load.append(pid=i, x=float(i))


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_mistyped_plan_is_rejected_at_submit(tmp_path, transport):
    cluster = make_cluster(tmp_path, "reject", transport)
    try:
        _load_points(cluster)
        sel = MistypedSelection().set_input(ObjectReader("db", "points"))
        with pytest.raises(PlanTypeError, match="'z'"):
            cluster.execute_computations(Writer("db", "out").set_input(sel))
        # Rejected before dispatch: no stage ever ran...
        assert cluster.last_job_log is None
        # ...and the sink set was never even created, let alone
        # partially written.
        with pytest.raises(SetNotFoundError):
            cluster.read("db", "out")
    finally:
        cluster.close()


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_valid_plan_runs_and_records_verify_phase(tmp_path, transport):
    cluster = make_cluster(tmp_path, "accept", transport)
    try:
        _load_points(cluster)
        sel = GoodSelection().set_input(ObjectReader("db", "points"))
        cluster.execute_computations(Writer("db", "out").set_input(sel))
        assert sorted(cluster.read("db", "out")) == [
            float(i) for i in range(11, 64)
        ]
        phases = {span.name for span in cluster.last_trace.spans(kind="phase")}
        assert "verify" in phases
    finally:
        cluster.close()


def test_verify_plans_false_is_the_escape_hatch(tmp_path):
    cluster = make_cluster(
        tmp_path, "escape", "sim", verify_plans=False,
        retry_policy=RetryPolicy(max_attempts=1),
    )
    try:
        _load_points(cluster)
        sel = MistypedSelection().set_input(ObjectReader("db", "points"))
        # The plan still fails — but the old way, inside the job, after
        # dispatch started.
        with pytest.raises(PCError) as excinfo:
            cluster.execute_computations(Writer("db", "out").set_input(sel))
        assert not isinstance(excinfo.value, PlanTypeError)
        assert cluster.last_job_log is not None
    finally:
        cluster.close()


def test_error_names_the_offending_statement(tmp_path):
    cluster = make_cluster(tmp_path, "message", "sim")
    try:
        _load_points(cluster)
        sel = MistypedSelection().set_input(ObjectReader("db", "points"))
        with pytest.raises(PlanTypeError) as excinfo:
            cluster.execute_computations(Writer("db", "out").set_input(sel))
        message = str(excinfo.value)
        assert "attAccess" in message
        assert "APPLY" in message  # the statement's TCAP text rides along
    finally:
        cluster.close()
