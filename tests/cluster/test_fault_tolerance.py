"""Fault-injection and recovery tests for the simulated cluster.

PC's dual-process worker (Section 2) exists so that user-code crashes
never take down a node's storage.  These tests inject faults — back-end
crashes mid-stage, dropped/delayed shuffle transfers, failed buffer-pool
reloads — and check the scheduler's RetryPolicy recovers: re-fork the
back-end, re-dispatch only the failed worker's portion against the
surviving front-end storage, back off exponentially, and (when allowed)
blacklist a hopeless worker and degrade onto its peers.
"""

import json
import os

import pytest

from repro.cluster import FakeClock, FaultInjector, PCCluster, RetryPolicy
from repro.core import AggregateComp, ObjectReader, Writer, lambda_from_member
from repro.errors import ExecutionError, TransferDroppedError, WorkerCrashError
from repro.memory import Float64, Int32, Int64, PCObject


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]


class SumX(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


def make_cluster(tmp_path, subdir, injector=None, policy=None, n_workers=3,
                 worker_memory=64 << 20):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    return PCCluster(
        n_workers=n_workers, page_size=1 << 12, spill_root=str(root),
        worker_memory=worker_memory,
        fault_injector=injector, retry_policy=policy,
    )


def load_points(cluster, n=200, replication=1):
    cluster.create_database("db")
    cluster.create_set("db", "points", Point, replication=replication)
    with cluster.loader("db", "points") as load:
        for i in range(n):
            load.append(Point, pid=i, cluster_id=i % 4, x=float(i))


def run_aggregation(cluster):
    agg = SumX().set_input(ObjectReader("db", "points"))
    Writer("db", "sums").set_input(agg).execute(cluster)
    return cluster.read("db", "sums", as_pairs=True, comp=agg)


def expected_sums(n=200):
    sums = {}
    for i in range(n):
        sums[i % 4] = sums.get(i % 4, 0.0) + float(i)
    return sums


def fast_policy(clock, **overrides):
    overrides.setdefault("sleep", clock.sleep)
    overrides.setdefault("clock", clock.clock)
    return RetryPolicy(**overrides)


# -- back-end crash recovery ----------------------------------------------------------


def test_injected_crash_recovers_and_matches_no_fault_run(tmp_path):
    clean = make_cluster(tmp_path, "clean")
    load_points(clean)
    baseline = run_aggregation(clean)

    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-1", times=1)
    faulted = make_cluster(
        tmp_path, "faulted", injector=injector, policy=fast_policy(clock)
    )
    load_points(faulted)
    result = run_aggregation(faulted)

    assert result == baseline == expected_sums()
    # The crash really fired, re-forked the back-end, and was retried.
    assert injector.counts["backend_crashes"] == 1
    assert sum(w.refork_count for w in faulted.workers) == 1
    assert clock.slept  # the backoff went through the injectable sleep
    retry_spans = faulted.last_trace.spans(kind="retry")
    assert len(retry_spans) == 1
    assert retry_spans[0].counters["retry.backoff_ms"] >= 1
    totals = faulted.last_trace.totals()
    assert totals["faults.backend_crashes"] == 1
    assert totals["faults.tasks_recovered"] == 1


def test_exhausted_retries_raise_execution_error_naming_stage_and_worker(
    tmp_path,
):
    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-0", times=99)
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=fast_policy(clock)
    )
    load_points(cluster, n=20)
    with pytest.raises(ExecutionError) as excinfo:
        run_aggregation(cluster)
    message = str(excinfo.value)
    assert "worker-0" in message
    assert "JobStage" in message  # the failing stage kind is named
    assert "retries exhausted" in message
    assert isinstance(excinfo.value.__cause__, WorkerCrashError)
    # Every allowed attempt crashed and re-forked; backoff ran between them.
    attempts = cluster.retry_policy.max_attempts
    assert sum(w.refork_count for w in cluster.workers) == attempts
    assert len(clock.slept) == attempts - 1
    assert clock.slept == sorted(clock.slept)  # exponential: non-decreasing


def test_retries_disabled_same_injection_fails_immediately(tmp_path):
    injector = FaultInjector().crash_backend("worker-1", times=1)
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=RetryPolicy.disabled()
    )
    load_points(cluster, n=20)
    with pytest.raises(ExecutionError, match="worker-1"):
        run_aggregation(cluster)
    assert not cluster.last_trace.spans(kind="retry")


def test_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(
        max_attempts=6, backoff_base_s=0.01, backoff_multiplier=2.0,
        backoff_max_s=0.05,
    )
    schedule = [policy.backoff_s(n) for n in range(1, 6)]
    assert schedule == [0.01, 0.02, 0.04, 0.05, 0.05]
    assert not policy.should_retry(6)


def test_task_timeout_stops_retries(tmp_path):
    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-0", times=99)
    policy = fast_policy(
        clock, max_attempts=50, backoff_base_s=1.0, backoff_max_s=10.0,
        timeout_s=2.5,
    )
    cluster = make_cluster(tmp_path, "c", injector=injector, policy=policy)
    load_points(cluster, n=20)
    with pytest.raises(ExecutionError, match="task timeout"):
        run_aggregation(cluster)
    # The fake clock advanced past the deadline long before 50 attempts.
    assert sum(w.refork_count for w in cluster.workers) < 10


# -- network faults -------------------------------------------------------------------


def test_dropped_shuffle_transfer_is_retried_exactly_once(tmp_path):
    injector = FaultInjector()
    cluster = make_cluster(tmp_path, "c", injector=injector)
    load_points(cluster)  # scripted below, so loading sees no faults
    injector.drop_transfer(times=1)
    result = run_aggregation(cluster)
    assert result == expected_sums()
    assert cluster.network.transfers_dropped == 1
    assert cluster.network.transfer_retries == 1
    totals = cluster.last_trace.totals()
    assert totals["net.transfers_dropped"] == 1
    assert totals["net.transfer_retries"] == 1


def test_dropped_transfer_with_retries_disabled_raises(tmp_path):
    injector = FaultInjector()
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=RetryPolicy.disabled()
    )
    load_points(cluster)
    injector.drop_transfer(times=1)
    with pytest.raises(TransferDroppedError):
        run_aggregation(cluster)


def test_delayed_transfers_are_accounted_not_slept(tmp_path):
    injector = FaultInjector().delay_transfer(5.0, times=3)
    cluster = make_cluster(tmp_path, "c", injector=injector)
    load_points(cluster)
    result = run_aggregation(cluster)
    assert result == expected_sums()
    # 15 simulated seconds of link delay, recorded but never slept.
    assert cluster.network.delay_s_total == pytest.approx(15.0)
    assert injector.counts["transfer_delays"] == 3
    if cluster.network.name == "sim":
        # Wall-clock proof of "never slept"; only deterministic without
        # real back-end processes (and their spawn time) in the loop.
        assert cluster.last_trace.root.duration_s < 5.0


# -- buffer-pool reload faults --------------------------------------------------------


def test_failed_page_reload_recovers_via_stage_retry(tmp_path):
    clock = FakeClock()
    injector = FaultInjector()
    # A tiny pool forces spills during loading, so the scan inside the
    # job must reload spilled pages — where the injected I/O fault fires.
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=fast_policy(clock),
        n_workers=2, worker_memory=3 << 12,
    )
    # Enough rows that loading overflows the tiny pool in either page
    # layout (columnar pages pack ~4x more rows than object pages here).
    load_points(cluster, n=2400)
    spilled = sum(
        w.storage.pool.stats()["spills"] for w in cluster.workers
    )
    assert spilled > 0, "test premise: loading must spill pages"
    injector.fail_page_reload(times=1)
    result = run_aggregation(cluster)
    assert result == expected_sums(n=2400)
    assert injector.counts["reload_failures"] == 1
    reload_failures = sum(
        w.storage.pool.stats()["reload_failures"] for w in cluster.workers
    )
    assert reload_failures == 1
    # The reload fault surfaced as a back-end crash and was retried.
    assert sum(w.refork_count for w in cluster.workers) == 1
    assert cluster.last_trace.spans(kind="retry")


# -- blacklisting and graceful degradation --------------------------------------------


def test_hopeless_worker_is_blacklisted_and_absorbed_without_restart(
    tmp_path,
):
    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-2", times=99)
    policy = fast_policy(
        clock, max_attempts=2, blacklist_on_exhaustion=True
    )
    cluster = make_cluster(tmp_path, "c", injector=injector, policy=policy)
    # Several pages in either layout, so the doomed worker holds some.
    load_points(cluster, n=600)
    result = run_aggregation(cluster)
    assert result == expected_sums(n=600)  # the job still finished, correctly
    assert cluster.blacklist == {"worker-2"}
    assert len(cluster.active_workers) == 2
    assert cluster.stats()["blacklist"] == ["worker-2"]
    # The dead worker's durable partitions moved to the survivors.
    assert cluster.storage_manager.total_objects("db", "points") == 600
    totals = cluster.last_trace.totals()
    assert totals["faults.workers_blacklisted"] == 1
    assert totals["faults.pages_redistributed"] > 0
    kinds = [stage.kind for stage in cluster.last_job_log]
    # The scan source is replica-map governed, so the survivors absorbed
    # the dead worker's orphaned pages instead of restarting the job.
    assert "WorkerAbsorbedEvent" in kinds
    assert "WorkerBlacklistedEvent" not in kinds
    assert totals["faults.workers_absorbed"] == 1
    # The absorbed pages really were re-read (served off a survivor).
    assert cluster.replication.failover_reads > 0


def test_blacklisting_stops_at_min_surviving_workers(tmp_path):
    clock = FakeClock()
    injector = FaultInjector().crash_backend(times=10 ** 6)  # every worker
    policy = fast_policy(
        clock, max_attempts=2, blacklist_on_exhaustion=True,
        min_surviving_workers=2,
    )
    cluster = make_cluster(tmp_path, "c", injector=injector, policy=policy)
    load_points(cluster, n=20)
    with pytest.raises(ExecutionError):
        run_aggregation(cluster)
    # Degradation stopped before dipping under the floor.
    assert len(cluster.active_workers) >= 2


# -- engine lifecycle -----------------------------------------------------------------


def test_backend_engines_released_after_jobs(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster)
    run_aggregation(cluster)
    run_aggregation(cluster)
    assert all(not w.backend.engines for w in cluster.workers)


def test_backend_engines_released_after_failed_job(tmp_path):
    injector = FaultInjector().crash_backend("worker-0", times=99)
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=RetryPolicy.disabled()
    )
    load_points(cluster, n=20)
    with pytest.raises(ExecutionError):
        run_aggregation(cluster)
    assert all(not w.backend.engines for w in cluster.workers)


# -- determinism and storms -----------------------------------------------------------


def test_seeded_injector_is_deterministic():
    decisions = []
    for _run in range(2):
        injector = FaultInjector(seed=7, crash_rate=0.3, drop_rate=0.3)
        run = []
        for i in range(50):
            run.append(injector.should_crash_backend("worker-0", "stage"))
            run.append(injector.on_transfer("a", "b", 100))
        decisions.append((run, dict(injector.counts)))
    assert decisions[0] == decisions[1]


def test_seeded_fault_storm_still_computes_the_right_answer(tmp_path):
    seed = int(os.environ.get("PC_FAULT_SEED", "0"))
    clock = FakeClock()
    injector = FaultInjector(seed=seed)
    policy = fast_policy(clock, max_attempts=6, transfer_retries=3)
    cluster = make_cluster(tmp_path, "c", injector=injector, policy=policy)
    load_points(cluster)
    # Arm the random rates only after loading, then storm the job.
    injector.crash_rate = 0.05
    injector.drop_rate = 0.02
    injector.delay_rate = 0.2
    injector.delay_s = 0.01
    result = run_aggregation(cluster)
    assert result == expected_sums()
    # Whatever fired was recovered and fully accounted in the trace.
    totals = cluster.last_trace.totals()
    assert totals.get("faults.backend_crashes", 0) == \
        injector.counts["backend_crashes"]
    assert totals.get("net.transfers_dropped", 0) == \
        injector.counts["transfer_drops"]


def test_seeded_storm_with_corruption_over_replicated_load(tmp_path):
    """Crashes, drops, *and* corruption (in-flight and at-rest) rain on a
    job over a replicated set; the answer is still byte-exact, corrupted
    copies were quarantined/healed (never served), and the set ends at
    full replication factor on whatever workers survived."""
    seed = int(os.environ.get("PC_FAULT_SEED", "0"))
    clock = FakeClock()
    injector = FaultInjector(seed=seed)
    policy = fast_policy(
        clock, max_attempts=6, transfer_retries=4,
        blacklist_on_exhaustion=True,
    )
    # A small pool forces spills, so at-rest corruption has reloads to
    # strike; replication=2 gives the heal path somewhere to heal from.
    cluster = make_cluster(
        tmp_path, "storm", injector=injector, policy=policy,
        worker_memory=6 << 12,
    )
    load_points(cluster, n=400, replication=2)
    # Arm the combined storm only after the replicated load.
    injector.crash_rate = 0.03
    injector.drop_rate = 0.02
    injector.corrupt_rate = 0.02
    injector.page_corrupt_rate = 0.02

    agg = SumX().set_input(ObjectReader("db", "points"))
    Writer("db", "sums").set_input(agg).execute(cluster)

    # Calm the storm, then verify what it left behind.
    injector.crash_rate = injector.drop_rate = 0.0
    injector.corrupt_rate = injector.page_corrupt_rate = 0.0
    assert cluster.read("db", "sums", as_pairs=True, comp=agg) == \
        expected_sums(n=400)
    assert sorted(h.pid for h in cluster.read("db", "points")) == \
        list(range(400))
    # Every page is back at full factor over the surviving workers.
    cluster.replication.restore_replication()
    want = min(2, len(cluster.active_workers))
    factors = cluster.replication.replication_factors("db", "points")
    assert factors and all(count >= want for count in factors.values())
    # Any at-rest corruption that struck a reload was detected and
    # healed — never silently served.
    repl = cluster.replication.stats()
    pool_failures = sum(
        w.storage.pool.stats()["checksum_failures"]
        for w in cluster.workers
    )
    assert injector.counts["page_corruptions"] == 0 or \
        repl["checksum_failures"] + pool_failures > 0


# -- TPC-H acceptance -----------------------------------------------------------------


def test_tpch_aggregation_survives_single_worker_crash_byte_identical(
    tmp_path,
):
    from repro.tpch import (
        TpchSpec,
        customers_per_supplier_pc,
        load_pc_customers,
    )

    spec = TpchSpec(n_customers=30, n_parts=40, n_suppliers=6, seed=5)

    def serialized(cluster):
        result, total = customers_per_supplier_pc(cluster)
        normalized = {
            supplier: {c: sorted(parts) for c, parts in customers.items()}
            for supplier, customers in result.items()
        }
        return json.dumps(normalized, sort_keys=True), total

    clean = PCCluster(n_workers=3, page_size=1 << 16,
                      spill_root=str(tmp_path / "clean"))
    load_pc_customers(clean, spec)
    clean_bytes, clean_total = serialized(clean)

    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-1", times=1)
    faulted = PCCluster(
        n_workers=3, page_size=1 << 16,
        spill_root=str(tmp_path / "faulted"),
        fault_injector=injector, retry_policy=fast_policy(clock),
    )
    load_pc_customers(faulted, spec)
    faulted_bytes, faulted_total = serialized(faulted)

    assert faulted_bytes == clean_bytes  # byte-identical result
    assert faulted_total == clean_total
    retry_spans = faulted.last_trace.spans(kind="retry")
    assert retry_spans
    assert retry_spans[0].counters["retry.backoff_ms"] >= 1
    assert faulted.last_trace.totals()["faults.tasks_recovered"] >= 1

    # The same injection with retries disabled kills the job.
    injector2 = FaultInjector().crash_backend("worker-1", times=1)
    fragile = PCCluster(
        n_workers=3, page_size=1 << 16,
        spill_root=str(tmp_path / "fragile"),
        fault_injector=injector2, retry_policy=RetryPolicy.disabled(),
    )
    load_pc_customers(fragile, spec)
    with pytest.raises(ExecutionError, match="worker-1"):
        customers_per_supplier_pc(fragile)
