"""Chaos-harness tests: real signal storms against the process transport.

The acceptance bar for the supervision layer (DESIGN §13): a seeded
storm of real SIGKILLs and SIGSTOP/SIGCONT pairs delivered mid-job must
leave results byte-identical to an unfaulted run, leak no shared-memory
segment and no child process, and land detect→re-fork latencies in the
``pc_sup_recovery_seconds`` histogram that ``BENCH_chaos.json`` reports.
"""

import os
import time

import pytest

from repro.cluster import ChaosMonkey, PCCluster, RetryPolicy
from repro.cluster import transport as transport_mod
from repro.cluster.chaos import KILL, STOP
from repro.cluster.transport import remote_available
from repro.storage.shm_registry import pid_alive
from repro.tpch import TpchSpec, customers_per_supplier_pc, load_pc_customers

needs_process = pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)

TPCH_SPEC = TpchSpec(n_customers=30, n_parts=40, n_suppliers=6, seed=11)


def _proc_state(pid):
    """One-letter scheduler state from /proc, or None if the pid is gone."""
    try:
        with open("/proc/%d/stat" % pid) as f:
            return f.read().split(") ", 1)[1].split(" ", 1)[0]
    except (OSError, IndexError):
        return None


def assert_no_leaks(cluster, monkey):
    """No shm segment, no orphaned child, no process left stopped."""
    assert cluster.shm_registry.live == {}
    pooled = {child.pid for child in transport_mod._all_children}
    for _offset, action, _worker_id, pid in monkey.delivered:
        if action == KILL:
            # A killed child was reaped, not left as a zombie orphan.
            assert _proc_state(pid) in (None, "Z") or pid in pooled
        else:
            # Every SIGSTOP got its SIGCONT: nothing is still frozen.
            assert _proc_state(pid) != "T"
    for child in transport_mod._all_children:
        if child.healthy():
            assert _proc_state(child.pid) != "T"


# -- the schedule ---------------------------------------------------------------------


class _FakeBackend:
    child_pid = None


class _FakeWorker:
    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.backend = _FakeBackend()


class _FakeCluster:
    def __init__(self, n=3):
        self.workers = [_FakeWorker("worker-%d" % i) for i in range(n)]
        self.blacklist = set()


def test_storm_schedule_is_deterministic_per_seed():
    cluster = _FakeCluster()
    first = ChaosMonkey(cluster, seed=42, kills=3, stops=1, window_s=2.0)
    again = ChaosMonkey(cluster, seed=42, kills=3, stops=1, window_s=2.0)
    other = ChaosMonkey(cluster, seed=43, kills=3, stops=1, window_s=2.0)
    assert first.schedule == again.schedule
    assert first.schedule != other.schedule
    assert len(first.schedule) == 4
    assert [a for _o, a, _s in first.schedule].count(KILL) == 3
    assert [a for _o, a, _s in first.schedule].count(STOP) == 1
    for offset, _action, slot in first.schedule:
        assert 0.05 <= offset <= 2.05
        assert 0 <= slot < 3
    # The schedule is time-ordered, so the storm thread can walk it.
    assert first.schedule == sorted(first.schedule)


def test_storm_against_pidless_workers_drains_without_delivering():
    # Sim back-ends have no child pid: every event re-aims its bounded
    # number of times and is then dropped — the storm must terminate.
    cluster = _FakeCluster()
    monkey = ChaosMonkey(cluster, seed=1, kills=2, stops=1, window_s=0.01,
                         start_after_s=0.0)
    monkey.MAX_RETRIES = 2
    with monkey:
        pass
    assert monkey.delivered == []
    assert monkey.counts == {KILL: 0, STOP: 0}


# -- the acceptance storm: TPC-H under fire -------------------------------------------


def _tpch_cluster(tmp_path, subdir, policy=None):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    cluster = PCCluster(
        n_workers=3, page_size=1 << 14, spill_root=str(root),
        transport="process", retry_policy=policy,
    )
    load_pc_customers(cluster, TPCH_SPEC, replication=2)
    return cluster


@needs_process
def test_tpch_is_byte_identical_under_seeded_signal_storm(tmp_path):
    baseline_cluster = _tpch_cluster(tmp_path, "baseline")
    baseline = customers_per_supplier_pc(baseline_cluster)
    baseline_cluster.close()
    assert baseline[1] > 0  # per-supplier customer entries exist

    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.01,
                         backoff_max_s=0.05)
    cluster = _tpch_cluster(tmp_path, "storm", policy=policy)
    monkey = ChaosMonkey(cluster, seed=7, kills=3, stops=1, window_s=1.5)
    runs = 0
    with monkey:
        # Keep the multi-stage job running for the storm's whole window
        # so every signal lands mid-execution somewhere.
        horizon = time.monotonic() + 2.2
        while time.monotonic() < horizon:
            assert customers_per_supplier_pc(cluster) == baseline
            runs += 1
    assert runs >= 2
    # The whole storm landed on real processes: >= 3 SIGKILLs, 1 STOP.
    assert monkey.counts == {KILL: 3, STOP: 1}
    assert all(pid is not None for _o, _a, _w, pid in monkey.delivered)
    # And the dust having settled, the answer still matches.
    assert customers_per_supplier_pc(cluster) == baseline
    # Real deaths were detected and recovered; latency was recorded.
    snapshot = cluster.metrics()
    assert snapshot.value("pc_faults_backend_crashes_total") >= 1
    assert sum(w.refork_count for w in cluster.workers) >= 1
    assert cluster.supervisor.recovery_quantile(0.5) is not None
    assert cluster.supervisor.recovery_quantile(0.99) is not None
    cluster.close()
    assert_no_leaks(cluster, monkey)


@needs_process
def test_columnar_kmeans_is_byte_identical_under_storm(tmp_path):
    np = pytest.importorskip("numpy")
    from repro.ml.kmeans_columnar import ColumnarKMeans

    rng = np.random.default_rng(5)
    # Eighths-grid coordinates: sums and distances are exact, so the
    # storm comparison really is byte-for-byte.
    points = rng.integers(-40, 40, size=(240, 3)) / 8.0

    def run_iterations(km, steps=3):
        centers = km.initialize(4, seed=1)
        history = [centers.tobytes()]
        for _step in range(steps):
            centers = km.iterate(centers)
            history.append(centers.tobytes())
        return history

    root = tmp_path / "baseline"
    root.mkdir()
    clean = PCCluster(n_workers=3, page_size=1 << 13, spill_root=str(root),
                      transport="process")
    baseline = run_iterations(ColumnarKMeans(clean).load(points))
    clean.close()

    root = tmp_path / "storm"
    root.mkdir()
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.01,
                         backoff_max_s=0.05)
    cluster = PCCluster(n_workers=3, page_size=1 << 13, spill_root=str(root),
                        transport="process", retry_policy=policy)
    km = ColumnarKMeans(cluster).load(points)
    monkey = ChaosMonkey(cluster, seed=3, kills=2, stops=1, window_s=1.0)
    with monkey:
        horizon = time.monotonic() + 1.6
        while time.monotonic() < horizon:
            assert run_iterations(km) == baseline
    assert monkey.counts == {KILL: 2, STOP: 1}
    assert run_iterations(km) == baseline
    cluster.close()
    assert_no_leaks(cluster, monkey)
