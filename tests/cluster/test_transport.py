"""Pluggable-transport tests: sim/process parity and shuffle integrity.

The transport layer (DESIGN §11) carries two back-ends behind one
interface: the deterministic ``SimulatedNetwork`` and the
``ProcessTransport`` whose workers run user code in real spawned
processes attached to sealed pages over POSIX shared memory.  These
tests pin the contracts the split must keep: row shuffles get the same
checksum/re-send integrity as page transfers, a crashed back-end
refuses work until it is re-forked, the re-fork counter is a real
PC004-compliant metric, and an injected crash racing an in-flight
shuffle produces byte-identical TPC-H results on both transports.
"""

import pytest

from repro.cluster import (
    FakeClock,
    FaultInjector,
    PCCluster,
    RetryPolicy,
    SimulatedNetwork,
    make_transport,
)
from repro.cluster.transport import ProcessTransport, remote_available
from repro.errors import BackendCrashedError, PageCorruptionError, \
    WorkerCrashError
from repro.tpch import TpchSpec, customers_per_supplier_pc, load_pc_customers

from test_fault_tolerance import (
    expected_sums,
    fast_policy,
    load_points,
    make_cluster,
    run_aggregation,
)


# -- transport selection --------------------------------------------------------------


def test_make_transport_resolves_names_and_passthrough():
    sim = make_transport("sim")
    assert isinstance(sim, SimulatedNetwork)
    assert sim.name == "sim" and sim.page_residency == "mem"
    proc = make_transport("process")
    assert isinstance(proc, ProcessTransport)
    assert proc.name == "process" and proc.page_residency == "shm"
    assert make_transport(sim) is sim  # instances pass through untouched
    with pytest.raises(ValueError, match="unknown transport"):
        make_transport("carrier-pigeon")
    proc.close()


def test_cluster_exposes_selected_transport(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    assert cluster.transport is cluster.network
    assert cluster.stats()["network"]["transport"] == cluster.transport.name


# -- satellite: row-shuffle integrity (seed regression) -------------------------------


def test_corrupted_row_shuffle_is_detected_and_resent(tmp_path):
    # Seed behavior under test: ship_rows delivered a ``corrupt`` verdict
    # unchanged.  Now the batch is checksummed, the corruption detected
    # on receipt, and the batch re-sent within the transfer budget.
    injector = FaultInjector().corrupt_transfer(times=1)
    cluster = make_cluster(tmp_path, "c", injector=injector)
    rows = [(1, 2.0), (2, 3.0), (3, 5.0)]
    shipped = cluster.network.ship_rows("worker-0", "worker-1", rows)
    assert shipped == rows  # the receiver never sees the corrupt batch
    assert cluster.network.transfers_corrupted == 1
    assert cluster.network.transfer_retries == 1


def test_corrupted_row_shuffle_without_budget_raises(tmp_path):
    injector = FaultInjector().corrupt_transfer(times=1)
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=RetryPolicy.disabled()
    )
    with pytest.raises(PageCorruptionError, match="re-send budget"):
        cluster.network.ship_rows("worker-0", "worker-1", [(1, 1.0)])
    assert cluster.network.transfers_corrupted == 1
    assert cluster.network.transfer_retries == 0


def test_row_shuffle_checksum_skipped_without_injector(tmp_path):
    cluster = make_cluster(tmp_path, "c")  # no fault injector
    rows = [(7, 11.0)]
    assert cluster.network.ship_rows("worker-0", "worker-1", rows) is rows


# -- satellite: crashed back-end rejects dispatch -------------------------------------


def test_crashed_backend_rejects_dispatch_until_reforked(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    worker = cluster.workers[0]

    def boom():
        raise RuntimeError("user code exploded")

    with pytest.raises(WorkerCrashError):
        worker.dispatch(boom)  # the crash re-forks via dispatch...
    assert worker.refork_count == 1

    worker.backend.crashed = True  # ...but a dead back-end, un-reforked:
    before = worker.refork_count
    with pytest.raises(BackendCrashedError, match="re-fork"):
        worker.dispatch(lambda: 1)
    assert worker.refork_count == before  # rejection is not a crash

    worker.refork_backend()
    assert worker.dispatch(lambda: 41 + 1) == 42
    assert worker.refork_count == before + 1


def test_run_user_code_on_crashed_backend_raises_backend_crashed(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    backend = cluster.workers[0].backend

    def boom():
        raise ValueError("nope")

    with pytest.raises(WorkerCrashError):
        backend.run_user_code(boom)
    assert backend.crashed
    with pytest.raises(BackendCrashedError, match="worker-0"):
        backend.run_user_code(lambda: 1)


# -- satellite: re-fork counter is a real metric --------------------------------------


def test_refork_count_is_pc004_counter_with_trace_mirror(tmp_path):
    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-1", times=1)
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=fast_policy(clock)
    )
    load_points(cluster)
    assert run_aggregation(cluster) == expected_sums()
    snapshot = cluster.metrics()
    assert snapshot.value("pc_worker_reforks_total") == 1
    assert snapshot.value("pc_worker_reforks_total", worker="worker-1") == 1
    assert snapshot.value("pc_worker_reforks_total", worker="worker-0") == 0
    # the same increment feeds the job trace
    assert cluster.last_trace.totals()["faults.reforks"] == 1
    assert "pc_worker_reforks_total" in snapshot.to_prometheus()


# -- satellite: re-fork racing an in-flight shuffle -----------------------------------

TPCH_SPEC = TpchSpec(n_customers=30, n_parts=40, n_suppliers=6, seed=11)


def _tpch_with_midshuffle_crash(tmp_path, subdir, transport, injector=None):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    cluster = PCCluster(
        n_workers=3, page_size=1 << 14, spill_root=str(root),
        fault_injector=injector,
        retry_policy=fast_policy(FakeClock()) if injector else None,
        transport=transport,
    )
    load_pc_customers(cluster, TPCH_SPEC, replication=2)
    result, total = customers_per_supplier_pc(cluster)
    return cluster, result, total


@pytest.mark.parametrize("transport", ["sim", "process"])
def test_refork_racing_inflight_shuffle_is_byte_identical(
    tmp_path, transport
):
    # Baseline: the same TPC-H job with no faults, on the simulator.
    _, baseline, baseline_total = _tpch_with_midshuffle_crash(
        tmp_path, "clean-" + transport, "sim"
    )
    # Crash worker-1's back-end during the pre-aggregation pipeline that
    # feeds the shuffle: with the process transport its peers' tasks are
    # already submitted when the loss is detected, so the re-fork +
    # retry races real in-flight work.
    injector = FaultInjector().crash_backend(
        "worker-1", stage_kind="PipelineJobStage", times=1
    )
    cluster, result, total = _tpch_with_midshuffle_crash(
        tmp_path, "faulted-" + transport, transport, injector
    )
    assert injector.counts["backend_crashes"] == 1
    assert sum(w.refork_count for w in cluster.workers) == 1
    assert total == baseline_total > 0
    assert result == baseline


@pytest.mark.skipif(
    not remote_available(), reason="cloudpickle unavailable"
)
def test_process_transport_runs_real_child_processes(tmp_path):
    import os

    root = tmp_path / "proc"
    root.mkdir()
    cluster = PCCluster(
        n_workers=2, page_size=1 << 14, spill_root=str(root),
        transport="process",
    )
    load_points(cluster, n=120)
    assert run_aggregation(cluster) == expected_sums(n=120)
    pids = {
        worker.backend.child_pid for worker in cluster.workers
    } - {None}
    assert pids, "no task ran in a child process"
    assert os.getpid() not in pids
    cluster.close()
