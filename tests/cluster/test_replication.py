"""Replicated, checksummed storage: placement, failover, healing, recovery.

``create_set(..., replication=k)`` keeps ``k`` synchronous copies of
every sealed page on ring-chosen workers, stamped with a CRC32 the
storage layer verifies on every spill reload, network receipt, and
replicated read.  These tests exercise the full durability story: the
deterministic placement ring, failover reads after a total node loss,
re-replication back to full factor, quarantine-and-heal of corrupted
copies, checksummed transfer re-sends, atomic ``create_set``, and
crash-consistent catalog recovery from the write-ahead journal.
"""

import pytest

from repro.cluster import FakeClock, FaultInjector, PCCluster, RetryPolicy
from repro.core import AggregateComp, ObjectReader, Writer, lambda_from_member
from repro.errors import (
    PageCorruptionError,
    ReplicationError,
    StorageError,
)
from repro.memory import Float64, Int32, Int64, PCObject
from repro.storage import PlacementRing, corrupt_bytes, page_checksum


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]


class SumX(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


def make_cluster(tmp_path, subdir, injector=None, policy=None, n_workers=3,
                 worker_memory=64 << 20):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    return PCCluster(
        n_workers=n_workers, page_size=1 << 12, spill_root=str(root),
        worker_memory=worker_memory,
        fault_injector=injector, retry_policy=policy,
    )


def load_points(cluster, n=600, replication=1):
    cluster.create_database("db")
    cluster.create_set("db", "points", Point, replication=replication)
    with cluster.loader("db", "points") as load:
        for i in range(n):
            load.append(Point, pid=i, cluster_id=i % 4, x=float(i))


def read_pids(cluster):
    return sorted(h.pid for h in cluster.read("db", "points"))


def run_aggregation(cluster):
    agg = SumX().set_input(ObjectReader("db", "points"))
    Writer("db", "sums").set_input(agg).execute(cluster)
    return cluster.read("db", "sums", as_pairs=True, comp=agg)


def expected_sums(n=600):
    sums = {}
    for i in range(n):
        sums[i % 4] = sums.get(i % 4, 0.0) + float(i)
    return sums


def fast_policy(clock, **overrides):
    overrides.setdefault("sleep", clock.sleep)
    overrides.setdefault("clock", clock.clock)
    return RetryPolicy(**overrides)


# -- placement ------------------------------------------------------------------------


def test_placement_ring_is_deterministic_and_distinct():
    ring = PlacementRing(["worker-2", "worker-0", "worker-1"])
    assert ring.replicas_for("worker-1", 2) == ["worker-1", "worker-2"]
    assert ring.replicas_for("worker-2", 2) == ["worker-2", "worker-0"]
    # k capped at the ring size; every worker distinct.
    assert ring.replicas_for("worker-0", 5) == \
        ["worker-0", "worker-1", "worker-2"]
    with pytest.raises(ReplicationError):
        ring.replicas_for("worker-9", 2)
    # Re-replication targets never land on a current holder.
    target = ring.rereplication_target("p000001", {"worker-0"})
    assert target in ("worker-1", "worker-2")
    assert ring.rereplication_target("p000001", set(ring.worker_ids)) is None


def test_replicated_load_places_two_copies_on_distinct_workers(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=2)
    meta = cluster.catalog.set_metadata("db", "points")
    assert meta.replication == 2
    assert meta.pages, "loading must populate the replica map"
    for record in meta.pages.values():
        workers = record.workers()
        assert len(workers) == 2
        assert len(set(workers)) == 2
        assert record.checksum is not None
    assert cluster.replication.replica_writes == len(meta.pages)
    # Each object still counted exactly once despite two stored copies.
    assert cluster.storage_manager.total_objects("db", "points") == 600
    assert read_pids(cluster) == list(range(600))


def test_replication_factor_validation(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    cluster.create_database("db")
    with pytest.raises(ReplicationError, match=">= 1"):
        cluster.create_set("db", "bad", Point, replication=0)
    with pytest.raises(ReplicationError, match="exceeds"):
        cluster.create_set("db", "bad", Point, replication=4)
    # Neither failure left a half-created set behind.
    assert ("db", "bad") not in cluster.storage_manager


def test_create_set_rolls_back_on_worker_failure(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    cluster.create_database("db")
    victim = cluster.workers[-1].storage

    def exploding_create_set(*args, **kwargs):
        raise StorageError("disk full")

    victim.create_set = exploding_create_set
    with pytest.raises(StorageError, match="disk full"):
        cluster.create_set("db", "points", Point)
    # Catalog record and the partitions created before the failure are gone.
    assert ("db", "points") not in cluster.storage_manager
    for worker in cluster.workers[:-1]:
        assert not worker.storage.has_set("db", "points")


# -- strict partitions() --------------------------------------------------------------


def test_partitions_raise_naming_missing_workers_without_replicas(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=1)
    # Yank a worker's storage out from under the set (no decommission
    # bookkeeping): its pages have no other replica.
    cluster.storage_manager.detach_server("worker-1")
    with pytest.raises(StorageError, match="worker-1"):
        cluster.storage_manager.partitions("db", "points")


def test_partitions_serve_survivors_when_replicas_cover_the_set(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=2)
    cluster.storage_manager.detach_server("worker-1")
    # Every page still has a live replica, so reads proceed.
    partitions = cluster.storage_manager.partitions("db", "points")
    assert len(partitions) == 2
    assert read_pids(cluster) == list(range(600))


# -- failover reads and re-replication ------------------------------------------------


def test_kill_worker_fails_over_and_restores_replication(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=2)
    baseline = read_pids(cluster)
    before = cluster.replication.scan_assignments("db", "points")
    assert "worker-1" in set(before.values()), \
        "test premise: worker-1 reads some pages"

    created = cluster.kill_worker("worker-1", reason="pulled the plug")

    assert cluster.blacklist == {"worker-1"}
    assert read_pids(cluster) == baseline == list(range(600))
    assert cluster.replication.failover_reads > 0
    # The factor was restored on the survivors, spread over both.
    assert created > 0
    assert cluster.replication.re_replications == created
    factors = cluster.replication.replication_factors("db", "points")
    assert factors and all(count == 2 for count in factors.values())
    for record in cluster.catalog.set_metadata("db", "points").pages.values():
        assert "worker-1" not in record.workers()
    totals = cluster.last_trace.totals()
    assert totals["faults.workers_killed"] == 1
    # A query over the survivors still computes the right answer.
    assert run_aggregation(cluster) == expected_sums()


def test_kill_worker_without_replication_is_data_loss(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=1)
    with pytest.raises(ReplicationError, match="last replica"):
        cluster.kill_worker("worker-0")


def test_decommission_evacuates_sole_copies_from_durable_frontend(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=1)
    # A decommission (back-end dead, front-end readable) evacuates the
    # unreplicated pages instead of losing them.
    moved = cluster.decommission_worker("worker-0", reason="drained")
    assert moved > 0
    assert read_pids(cluster) == list(range(600))
    assert cluster.storage_manager.total_objects("db", "points") == 600


# -- corruption: quarantine and heal --------------------------------------------------


def test_corrupt_spilled_page_is_quarantined_and_healed(tmp_path):
    injector = FaultInjector()
    # A tiny pool forces spills during loading, so reads reload spilled
    # pages — where the sticky corruption fires.
    cluster = make_cluster(
        tmp_path, "c", injector=injector, worker_memory=3 << 12,
    )
    # Enough rows that loading overflows the tiny pool in either page
    # layout (columnar pages pack ~4x more rows than object pages here).
    load_points(cluster, n=2400, replication=2)
    spilled = sum(
        w.storage.pool.stats()["spills"] for w in cluster.workers
    )
    assert spilled > 0, "test premise: loading must spill pages"
    injector.corrupt_page(times=1)

    assert read_pids(cluster) == list(range(2400))

    assert injector.counts["page_corruptions"] == 1
    repl = cluster.replication
    assert repl.checksum_failures >= 1
    assert repl.pages_healed >= 1
    pool_failures = sum(
        w.storage.pool.stats()["checksum_failures"] for w in cluster.workers
    )
    assert pool_failures >= 1
    # The healed copy serves cleanly now: a second read sees no new faults.
    healed = repl.pages_healed
    assert read_pids(cluster) == list(range(2400))
    assert repl.pages_healed == healed


def test_corrupt_transfer_is_detected_and_resent(tmp_path):
    injector = FaultInjector()
    clock = FakeClock()
    cluster = make_cluster(
        tmp_path, "c", injector=injector,
        policy=fast_policy(clock, transfer_retries=3),
    )
    cluster.create_database("db")
    cluster.create_set("db", "points", Point, replication=2)
    injector.corrupt_transfer(times=1)
    with cluster.loader("db", "points") as load:
        for i in range(50):
            load.append(Point, pid=i, cluster_id=i % 4, x=float(i))

    # The flipped payload failed its CRC on receipt and was re-sent; the
    # corrupted bytes never reached a partition.
    assert injector.counts["transfer_corruptions"] == 1
    stats = cluster.network.stats()
    assert stats["transfers_corrupted"] == 1
    assert stats["transfer_retries"] >= 1
    assert read_pids(cluster) == list(range(50))
    for record in cluster.catalog.set_metadata("db", "points").pages.values():
        assert record.checksum is not None


def test_corrupt_transfer_with_retries_disabled_raises(tmp_path):
    injector = FaultInjector()
    cluster = make_cluster(
        tmp_path, "c", injector=injector, policy=RetryPolicy.disabled(),
    )
    cluster.create_database("db")
    cluster.create_set("db", "points", Point, replication=2)
    injector.corrupt_transfer(times=1)
    with pytest.raises(PageCorruptionError):
        with cluster.loader("db", "points") as load:
            for i in range(50):
                load.append(Point, pid=i, cluster_id=i % 4, x=float(i))


def test_corrupt_bytes_always_changes_the_checksum():
    data = bytes(range(256)) * 16
    assert page_checksum(corrupt_bytes(data)) != page_checksum(data)
    assert corrupt_bytes(b"") == b""


# -- materialized outputs are replicated too ------------------------------------------


def test_materialized_output_pages_are_replicated_and_survive_a_kill(
    tmp_path,
):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=2)
    # Pre-create the output set with a replication factor: the sink's
    # materialized pages are then registered and replicated too.
    cluster.create_set("db", "sums", replication=2)
    baseline = run_aggregation(cluster)
    meta = cluster.catalog.set_metadata("db", "sums")
    assert meta.pages, "output materialization must register its pages"
    for record in meta.pages.values():
        assert len(set(record.workers())) == 2
        assert record.checksum is not None
    # Outputs share the input's redundancy: kill a worker and the
    # aggregation output is still fully readable.
    cluster.kill_worker("worker-2")
    agg = SumX().set_input(ObjectReader("db", "points"))
    assert cluster.read("db", "sums", as_pairs=True, comp=agg) == \
        baseline == expected_sums()


# -- crash-consistent catalog recovery ------------------------------------------------


def test_recover_replays_the_journal_and_serves_identical_reads(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=2)
    baseline_pids = read_pids(cluster)
    baseline_sums = run_aggregation(cluster)
    pages_before = dict(cluster.catalog.set_metadata("db", "points").pages)

    applied = cluster.recover()  # simulated master restart

    assert applied > 0
    meta = cluster.catalog.set_metadata("db", "points")
    assert set(meta.pages) == set(pages_before)
    for uid, record in meta.pages.items():
        assert record.replicas == pages_before[uid].replicas
        assert record.checksum == pages_before[uid].checksum
        assert record.count == pages_before[uid].count
    assert read_pids(cluster) == baseline_pids
    agg = SumX().set_input(ObjectReader("db", "points"))
    assert cluster.read("db", "sums", as_pairs=True, comp=agg) == \
        baseline_sums
    # The recovered catalog keeps journaling: loading more data works and
    # survives a second recovery.
    with cluster.loader("db", "points") as load:
        for i in range(600, 650):
            load.append(Point, pid=i, cluster_id=i % 4, x=float(i))
    cluster.recover()
    assert read_pids(cluster) == list(range(650))


def test_recovery_after_kill_reflects_the_post_kill_replica_map(tmp_path):
    cluster = make_cluster(tmp_path, "c")
    load_points(cluster, replication=2)
    cluster.kill_worker("worker-0")
    after_kill = {
        uid: [list(r) for r in record.replicas]
        for uid, record in
        cluster.catalog.set_metadata("db", "points").pages.items()
    }
    cluster.recover()
    meta = cluster.catalog.set_metadata("db", "points")
    assert {
        uid: [list(r) for r in record.replicas]
        for uid, record in meta.pages.items()
    } == after_kill
    assert "worker-0" not in meta.partitions
    assert read_pids(cluster) == list(range(600))


# -- mid-job failover ------------------------------------------------------------------


def test_tpch_query_survives_worker_kill_byte_identical(tmp_path):
    """The acceptance scenario: kill a node after a replicated TPC-H
    load; the query completes byte-identical off the surviving replicas
    without a job restart, and the replication factor is restored."""
    import json

    from repro.tpch import (
        TpchSpec,
        customers_per_supplier_pc,
        load_pc_customers,
    )

    spec = TpchSpec(n_customers=30, n_parts=40, n_suppliers=6, seed=5)

    def serialized(cluster):
        result, total = customers_per_supplier_pc(cluster)
        normalized = {
            supplier: {c: sorted(parts) for c, parts in customers.items()}
            for supplier, customers in result.items()
        }
        return json.dumps(normalized, sort_keys=True), total

    clean = PCCluster(n_workers=3, page_size=1 << 16,
                      spill_root=str(tmp_path / "clean"))
    load_pc_customers(clean, spec)
    clean_bytes, clean_total = serialized(clean)

    survivor = PCCluster(n_workers=3, page_size=1 << 16,
                         spill_root=str(tmp_path / "survivor"))
    load_pc_customers(survivor, spec, replication=2)
    survivor.kill_worker("worker-1", reason="node loss")
    survivor_bytes, survivor_total = serialized(survivor)

    assert survivor_bytes == clean_bytes  # byte-identical result
    assert survivor_total == clean_total
    assert survivor.replication.failover_reads > 0
    factors = survivor.replication.replication_factors("tpch", "customers")
    assert factors and all(count == 2 for count in factors.values())
    # No restart machinery fired: the job simply ran on the survivors.
    kinds = [stage.kind for stage in survivor.last_job_log]
    assert "WorkerBlacklistedEvent" not in kinds
    assert "WorkerAbsorbedEvent" not in kinds


def test_mid_job_blacklist_absorbs_orphans_without_restart(tmp_path):
    clock = FakeClock()
    injector = FaultInjector().crash_backend("worker-1", times=99)
    policy = fast_policy(
        clock, max_attempts=2, blacklist_on_exhaustion=True
    )
    cluster = make_cluster(tmp_path, "c", injector=injector, policy=policy)
    load_points(cluster, replication=2)

    assert run_aggregation(cluster) == expected_sums()

    kinds = [stage.kind for stage in cluster.last_job_log]
    assert "WorkerAbsorbedEvent" in kinds
    assert "WorkerBlacklistedEvent" not in kinds  # no job restart
    totals = cluster.last_trace.totals()
    assert totals["faults.workers_absorbed"] == 1
    assert cluster.replication.failover_reads > 0
    # The set ended back at full replication factor on the survivors.
    factors = cluster.replication.replication_factors("db", "points")
    assert factors and all(count == 2 for count in factors.values())
