"""Acceptance tests for the job-trace observability layer.

``cluster.execute_computations(...)`` followed by
``cluster.last_trace.to_json()`` must yield a machine-readable trace with
at least one job span, per-stage wall times, buffer-pool counters, and
the network's byte splits (zero-copy vs. rows, per-link).
"""

import json

import pytest

from repro.cluster import PCCluster
from repro.core import (
    AggregateComp,
    JoinComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.errors import ExecutionError
from repro.memory import Float64, Int32, Int64, PCObject, String
from repro.obs import render_trace


class Point(PCObject):
    fields = [("pid", Int32), ("cluster_id", Int32), ("x", Float64)]


class Label(PCObject):
    fields = [("cluster_id", Int32), ("label", String)]


class SumX(AggregateComp):
    key_type = Int64
    value_type = Float64

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cluster_id")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


@pytest.fixture
def cluster(tmp_path):
    c = PCCluster(n_workers=3, page_size=1 << 12,
                  spill_root=str(tmp_path))
    c.create_database("db")
    c.create_set("db", "points", Point)
    with c.loader("db", "points") as load:
        for i in range(200):
            load.append(Point, pid=i, cluster_id=i % 4, x=float(i))
    return c


def _run_aggregation(cluster):
    agg = SumX().set_input(ObjectReader("db", "points"))
    writer = Writer("db", "sums").set_input(agg)
    cluster.execute_computations(writer, job_name="sum-x")
    return agg


def test_trace_has_job_and_stage_spans_with_wall_times(cluster):
    assert cluster.last_trace is None  # nothing executed yet
    _run_aggregation(cluster)
    trace = cluster.last_trace
    assert trace is not None

    parsed = json.loads(trace.to_json())
    assert parsed["kind"] == "job"
    assert parsed["name"] == "sum-x"
    assert parsed["duration_s"] > 0

    stages = [c for c in parsed["children"] if c["kind"] == "stage"]
    assert len(stages) >= 2  # pre-aggregation + shuffled merge, at least
    assert {s["name"] for s in stages} >= {
        "PipelineJobStage", "AggregationJobStage",
    }
    for stage in stages:
        assert stage["duration_s"] > 0


def test_trace_job_log_and_spans_agree(cluster):
    _run_aggregation(cluster)
    stage_spans = cluster.last_trace.spans(kind="stage")
    assert [s.name for s in stage_spans] == \
        [stage.kind for stage in cluster.last_job_log]
    for stage in cluster.last_job_log:
        assert stage.span is not None
        assert stage.duration_s > 0


def test_trace_rolls_up_pool_and_network_counters(cluster):
    _run_aggregation(cluster)
    totals = cluster.last_trace.totals()

    # Buffer-pool counters: the scan pinned stored pages.
    assert totals["pool.pages_pinned"] > 0

    # Network byte split: the aggregation shuffle ships PC Map pages
    # (zero-copy) and per-link counters attribute them.
    assert totals["net.bytes_zero_copy"] > 0
    assert totals["net.bytes_total"] >= totals["net.bytes_zero_copy"]
    links = {k: v for k, v in totals.items() if k.startswith("net.link.")}
    assert links
    assert sum(links.values()) == totals["net.bytes_total"]

    # Engine tuple counts reached the trace too.
    assert totals["engine.rows_in"] >= 200


def test_trace_tasks_attribute_rows_per_worker(cluster):
    _run_aggregation(cluster)
    task_spans = cluster.last_trace.spans(kind="task")
    assert task_spans
    assert {span.name for span in task_spans} <= {
        w.worker_id for w in cluster.workers
    }
    total_rows = sum(
        span.counters.get("engine.rows_in", 0) for span in task_spans
    )
    assert total_rows >= 200  # every loaded point entered a pipeline


def test_trace_captures_row_traffic_for_partitioned_joins(cluster):
    cluster.create_set("db", "labels", Label)
    with cluster.loader("db", "labels") as load:
        for c in range(4):
            load.append(Label, cluster_id=c, label="L%d" % c)

    class LabelJoin(JoinComp):
        def get_selection(self, label, point):
            return lambda_from_member(label, "cluster_id") == \
                lambda_from_member(point, "cluster_id")

        def get_projection(self, label, point):
            return lambda_from_native(
                [label, point], lambda lab, p: (p.pid, lab.label)
            )

    cluster.broadcast_threshold = 0  # force the hash-partitioned path
    join = LabelJoin() \
        .set_input(0, ObjectReader("db", "labels")) \
        .set_input(1, ObjectReader("db", "points"))
    cluster.execute_computations(
        Writer("db", "joined").set_input(join), job_name="label-join"
    )
    totals = cluster.last_trace.totals()
    assert totals["net.bytes_rows"] > 0  # shuffles moved structured rows
    build_stages = [
        s for s in cluster.last_trace.spans(kind="stage")
        if s.name == "BuildHashTableJobStage"
    ]
    assert build_stages
    assert "partition" in build_stages[0].detail


def test_each_execution_yields_a_fresh_trace(cluster):
    _run_aggregation(cluster)
    first = cluster.last_trace
    cluster.execute_computations(
        Writer("db", "sums2").set_input(
            SumX().set_input(ObjectReader("db", "points"))
        ),
    )
    second = cluster.last_trace
    assert second is not first
    assert second.root.name == "job"  # default job name


def test_failed_job_still_leaves_a_partial_trace(cluster):
    class Exploding(SelectionComp):
        def get_projection(self, arg):
            def boom(p):
                raise RuntimeError("user code bug")

            return lambda_from_native([arg], boom)

    writer = Writer("db", "out").set_input(
        Exploding().set_input(ObjectReader("db", "points"))
    )
    with pytest.raises(ExecutionError):
        cluster.execute_computations(writer, job_name="doomed")
    trace = cluster.last_trace
    assert trace is not None
    assert trace.root.name == "doomed"
    assert all(span.end is not None for span in trace.root.walk())
    # Retries were attempted (and traced) before giving up.
    retry_spans = trace.spans(kind="retry")
    assert retry_spans
    assert retry_spans[0].counters.get("retry.backoff_ms", 0) >= 1


def test_render_trace_is_printable(cluster):
    _run_aggregation(cluster)
    text = render_trace(cluster.last_trace)
    assert "job sum-x" in text
    assert "AggregationJobStage" in text
    assert "net.bytes_zero_copy" in text
