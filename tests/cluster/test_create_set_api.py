"""The unified ``create_set`` surface: one keyword set, layout-aware.

``create_set(db, name, cls, *, page_size, replication, layout, schema)``
is the one DDL entry point; the drifted storage-layer ``type_name``
keyword survives one release behind a DeprecationWarning.  Schemas imply
``layout="columnar"``, ``PC_LAYOUT=columnar`` turns derivable classes
columnar by default, contradictory combinations fail loudly, and the
chosen layout survives the catalog journal (``cluster.recover()``).
"""

import warnings

import numpy as np
import pytest

from repro.cluster import PCCluster
from repro.errors import CatalogError
from repro.memory import Float64, Int64, PCObject, String, VectorType
from repro.schema import Schema, f64, i64


class Reading(PCObject):
    # All fields fixed-stride primitives: columnar-derivable.
    fields = [("sensor", Int64), ("value", Float64)]


class Tagged(PCObject):
    # The string field keeps this class on the row path.
    fields = [("label", String), ("value", Float64)]


@pytest.fixture
def cluster(tmp_path):
    cluster = PCCluster(n_workers=2, page_size=1 << 12,
                        spill_root=str(tmp_path))
    cluster.create_database("db")
    return cluster


def _meta(cluster, name):
    return cluster.catalog.set_metadata("db", name)


# -- the legacy shim ----------------------------------------------------------


def test_type_name_keyword_warns_and_still_works(cluster):
    cluster.register_type(Reading)
    with pytest.warns(DeprecationWarning, match="type_name"):
        cluster.create_set("db", "readings", type_name="Reading")
    meta = _meta(cluster, "readings")
    assert meta.layout == "row"
    with cluster.loader("db", "readings") as load:
        load.append(Reading, sensor=1, value=2.0)
    assert cluster.read("db", "readings")[0].value == 2.0


def test_cls_keyword_does_not_warn(cluster):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cluster.create_set("db", "readings", Reading)
        cluster.create_set("db", "by_name", cls="Reading")


def test_unknown_keyword_is_a_type_error(cluster):
    with pytest.raises(TypeError, match="typo_kwarg"):
        cluster.create_set("db", "readings", Reading, typo_kwarg=1)


# -- layout resolution --------------------------------------------------------


def test_schema_implies_columnar_and_field_lists_coerce(cluster):
    cluster.create_set("db", "points", schema=[("x", "f8"), ("n", i64)])
    meta = _meta(cluster, "points")
    assert meta.layout == "columnar"
    assert meta.schema == Schema([("x", f64), ("n", i64)])


def test_columnar_layout_derives_schema_from_primitive_cls(cluster):
    cluster.create_set("db", "readings", Reading, layout="columnar")
    meta = _meta(cluster, "readings")
    assert meta.layout == "columnar"
    assert meta.schema.names() == ["sensor", "value"]


def test_columnar_layout_without_derivable_schema_fails(cluster):
    with pytest.raises(CatalogError, match="needs a schema"):
        cluster.create_set("db", "tagged", Tagged, layout="columnar")
    with pytest.raises(CatalogError, match="needs a schema"):
        cluster.create_set("db", "bare", layout="columnar")


def test_row_layout_rejects_a_schema(cluster):
    with pytest.raises(CatalogError, match="layout='row'"):
        cluster.create_set("db", "points", layout="row",
                           schema=[("x", f64)])


def test_pc_layout_env_turns_derivable_sets_columnar(cluster, monkeypatch):
    monkeypatch.setenv("PC_LAYOUT", "columnar")
    cluster.create_set("db", "readings", Reading)
    cluster.create_set("db", "tagged", Tagged)
    assert _meta(cluster, "readings").layout == "columnar"
    # Non-derivable classes silently keep the row layout.
    assert _meta(cluster, "tagged").layout == "row"


def test_vector_fields_stay_on_the_row_path(cluster, monkeypatch):
    class Chunk(PCObject):
        fields = [("data", VectorType(Float64))]

    monkeypatch.setenv("PC_LAYOUT", "columnar")
    cluster.create_set("db", "chunks", Chunk)
    assert _meta(cluster, "chunks").layout == "row"


# -- the columnar loader ------------------------------------------------------


def test_columnar_loader_accepts_rows_and_columns(cluster):
    cluster.create_set("db", "points", schema=[("x", f64), ("n", i64)])
    with cluster.loader("db", "points") as load:
        load.append(x=1.5, n=1)
        load.append_columns(x=np.asarray([2.5, 3.5]), n=[2, 3])
    assert sorted(r.as_tuple() for r in cluster.read("db", "points")) == [
        (1.5, 1), (2.5, 2), (3.5, 3)
    ]


def test_columnar_loader_rejects_missing_and_built_objects(cluster):
    from repro.errors import StorageError

    cluster.create_set("db", "points", schema=[("x", f64)])
    load = cluster.loader("db", "points")
    with pytest.raises(StorageError, match="missing"):
        load.append(y=1.0)
    with pytest.raises(StorageError, match="fixed-stride columns"):
        load.append_built(lambda block: None)
    load.discard()


# -- journal replay -----------------------------------------------------------


def test_layout_and_schema_survive_recovery(cluster):
    cluster.create_set("db", "points", schema=[("x", f64), ("n", i64)])
    with cluster.loader("db", "points") as load:
        load.append_columns(x=[0.5, 1.5], n=[1, 2])

    applied = cluster.recover()  # simulated master restart

    assert applied > 0
    meta = _meta(cluster, "points")
    assert meta.layout == "columnar"
    assert meta.schema == Schema([("x", f64), ("n", i64)])
    # Reads still decode columnar pages and the loader is still columnar.
    assert sorted(r.as_tuple() for r in cluster.read("db", "points")) == [
        (0.5, 1), (1.5, 2)
    ]
    with cluster.loader("db", "points") as load:
        load.append(x=2.5, n=3)
    assert len(cluster.read("db", "points")) == 3
