"""Columnar/object parity: every lowered operator, byte-identical.

The optimizer may lower a selection, projection, or sum aggregation onto
the whole-page array kernels only if doing so is invisible: running the
same program with ``execute_computations(..., columnar=False)`` must
produce byte-identical results.  Inputs are dyadic rationals (whole
numbers, quarters, 64ths, eighths), so float accumulation is exact on
both paths and equality really means equality — no tolerances.

Each parity check runs on the simulated transport and, where the
environment allows, on real spawned processes over shared memory.
"""

import numpy as np
import pytest

from repro.cluster import PCCluster
from repro.cluster.transport import remote_available
from repro.core import (
    AggregateComp,
    ObjectReader,
    SelectionComp,
    Writer,
    lambda_from_member,
    lambda_from_native,
)
from repro.memory import Float64, Int64
from repro.ml.kmeans_columnar import ColumnarKMeans
from repro.schema import Schema, f64, i64
from repro.tpch.lineitem import (
    load_lineitems,
    q1_sums,
    q6_revenue,
    reference_q1,
    reference_q6,
)

TRANSPORTS = [
    "sim",
    pytest.param(
        "process",
        marks=pytest.mark.skipif(
            not remote_available(), reason="cloudpickle unavailable"
        ),
    ),
]

POINT_SCHEMA = Schema([("pid", i64), ("cid", i64), ("x", f64)])


class HighX(SelectionComp):
    """Filter + kernelized native projection (both columnar-lowered)."""

    def get_selection(self, arg):
        return lambda_from_member(arg, "x") > 100.0

    def get_projection(self, arg):
        return lambda_from_native(
            [arg], lambda p: p.x * 2.0,
            kernel=lambda rows: rows.column("x") * 2.0,
        )


class SumX(AggregateComp):
    key_type = Int64
    value_type = Float64
    reduce = "sum"

    def get_key_projection(self, arg):
        return lambda_from_member(arg, "cid")

    def get_value_projection(self, arg):
        return lambda_from_member(arg, "x")


def make_cluster(tmp_path, subdir, transport, **kwargs):
    root = tmp_path / subdir
    root.mkdir(exist_ok=True)
    # Explicit transport: the "sim" leg must stay simulated even when the
    # suite as a whole runs under PC_TRANSPORT=process.
    return PCCluster(n_workers=3, page_size=1 << 12, spill_root=str(root),
                     transport=transport, **kwargs)


def _load_points(cluster, n=500, min_pages=1):
    cluster.create_database("db")
    cluster.create_set("db", "points", schema=POINT_SCHEMA)
    with cluster.loader("db", "points") as load:
        for i in range(n):
            load.append(pid=i, cid=i % 4, x=float(i))
    assert load.pages_shipped >= min_pages


def _run_selection_and_sum(cluster, columnar):
    sel = HighX().set_input(ObjectReader("db", "points"))
    cluster.execute_computations(
        Writer("db", "high").set_input(sel), columnar=columnar
    )
    high = sorted(cluster.read("db", "high"))
    agg = SumX().set_input(ObjectReader("db", "points"))
    cluster.execute_computations(
        Writer("db", "sums").set_input(agg), columnar=columnar
    )
    sums = cluster.read("db", "sums", as_pairs=True, comp=agg)
    return high, sums


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_selection_projection_aggregation_parity(tmp_path, transport):
    n = 500
    expected_high = sorted(float(i) * 2.0 for i in range(101, n))
    expected_sums = {}
    for i in range(n):
        expected_sums[i % 4] = expected_sums.get(i % 4, 0.0) + float(i)

    results = {}
    for columnar in (True, False):
        cluster = make_cluster(
            tmp_path, "col" if columnar else "obj", transport,
            profiling=True,
        )
        try:
            # Parity must span page boundaries.
            _load_points(cluster, n, min_pages=2)
            results[columnar] = _run_selection_and_sum(cluster, columnar)
            snapshot = cluster.metrics()
            if columnar:
                # The engine-total counter is authoritative on every
                # transport (process workers ship their metric deltas
                # home); the per-operator split is master-side
                # observability, so assert it where the pipeline runs
                # in the coordinator process.
                assert snapshot.value("pc_engine_columnar_rows_total") > 0
                if transport == "sim":
                    for operator in ("filter", "apply", "aggregate"):
                        assert snapshot.value(
                            "pc_op_columnar_rows_total", operator=operator
                        ) > 0, operator
            else:
                assert snapshot.value("pc_op_columnar_rows_total") == 0
                assert snapshot.value("pc_engine_columnar_rows_total") == 0
        finally:
            cluster.close()

    assert results[True] == results[False] == (expected_high, expected_sums)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_pc_columnar_env_kill_switch(tmp_path, transport, monkeypatch):
    # PC_COLUMNAR=0 forces the object path even with columnar=None.
    cluster = make_cluster(tmp_path, "env", transport, profiling=True)
    try:
        _load_points(cluster, 200)
        monkeypatch.setenv("PC_COLUMNAR", "0")
        agg = SumX().set_input(ObjectReader("db", "points"))
        cluster.execute_computations(Writer("db", "sums").set_input(agg))
        assert cluster.metrics().value("pc_op_columnar_rows_total") == 0
        monkeypatch.delenv("PC_COLUMNAR")
        cluster.clear_set("db", "sums")
        cluster.execute_computations(Writer("db", "sums").set_input(agg))
        assert cluster.metrics().value("pc_op_columnar_rows_total") > 0
    finally:
        cluster.close()


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_tpch_q6_and_q1_parity(tmp_path, transport):
    cluster = make_cluster(tmp_path, "tpch", transport)
    try:
        columns = load_lineitems(cluster, 600, seed=3)
        on = q6_revenue(cluster, columnar=True)
        off = q6_revenue(cluster, columnar=False)
        assert on == off == reference_q6(columns)
        for measure in ("quantity", "extendedprice"):
            q1_on = q1_sums(cluster, measure, columnar=True)
            q1_off = q1_sums(cluster, measure, columnar=False)
            assert q1_on == q1_off == reference_q1(columns, measure)
    finally:
        cluster.close()


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_kmeans_iteration_parity(tmp_path, transport):
    rng = np.random.default_rng(7)
    # Coordinates on the eighths grid: exactly representable, and so are
    # the squared distances and sums both paths accumulate.
    points = rng.integers(-40, 40, size=(120, 3)) / 8.0
    cluster = make_cluster(tmp_path, "ml", transport)
    try:
        km = ColumnarKMeans(cluster).load(points)
        centers = km.initialize(4, seed=1)
        for _step in range(2):
            on = km.iterate(centers, columnar=True)
            off = km.iterate(centers, columnar=False)
            assert np.array_equal(on, off)
            centers = on
    finally:
        cluster.close()


def test_columnar_scan_read_returns_row_tuples(tmp_path):
    # cluster.read over a columnar set yields schema-ordered row views
    # that compare as plain tuples (the object-path bridge).
    cluster = make_cluster(tmp_path, "read", "sim")
    try:
        _load_points(cluster, 20)
        rows = cluster.read("db", "points")
        assert sorted(r.as_tuple() for r in rows) == [
            (i, i % 4, float(i)) for i in range(20)
        ]
        assert rows[0].field_names() == ["pid", "cid", "x"]
    finally:
        cluster.close()
