"""Unit tests for the lambda-calculus layer."""

import pytest

from repro.core import (
    Arg,
    as_lambda,
    const_lambda,
    lambda_from_member,
    lambda_from_method,
    lambda_from_native,
    lambda_from_self,
)
from repro.errors import LambdaError


class Thing:
    def __init__(self, size):
        self.size = size

    def doubled(self):
        return self.size * 2


def test_abstraction_families_carry_metadata():
    arg = Arg(0, Thing)
    member = lambda_from_member(arg, "size")
    assert member.info == {"type": "attAccess", "attName": "size"}
    method = lambda_from_method(arg, "doubled")
    assert method.info["methodName"] == "doubled"
    identity = lambda_from_self(arg)
    assert identity.kind == "self"
    native = lambda_from_native([arg], lambda t: t.size)
    assert native.info == {"type": "nativeLambda"}


def test_executors_are_vectorized():
    arg = Arg(0)
    things = [Thing(1), Thing(2), Thing(3)]
    assert lambda_from_member(arg, "size").executor()(things) == [1, 2, 3]
    assert lambda_from_method(arg, "doubled").executor()(things) == [2, 4, 6]
    assert lambda_from_self(arg).executor()(things) == things


def test_composition_builds_trees_with_dependencies():
    a, b = Arg(0), Arg(1)
    term = (lambda_from_member(a, "size") == lambda_from_method(b, "doubled")) \
        & (lambda_from_member(a, "size") > 5)
    assert term.kind == "&&"
    assert term.depends_on() == {0, 1}
    conjuncts = list(term.conjuncts())
    assert len(conjuncts) == 2
    assert conjuncts[0].is_equality
    assert not conjuncts[1].is_equality


def test_constant_coercion():
    term = lambda_from_member(Arg(0), "size") + 3
    constant = term.children[1]
    assert constant.kind == "constant"
    assert constant.info["value"] == 3
    assert as_lambda(constant) is constant


def test_arithmetic_and_boolean_executors():
    a = const_lambda(0)  # placeholder parents; executors run standalone
    plus = (as_lambda(a) + 1)
    assert plus.executor()([1, 2], [10, 10]) == [11, 12]
    both = (as_lambda(a) & 1)
    assert both.executor()([True, False], [True, True]) == [True, False]
    negate = ~as_lambda(a)
    assert negate.executor()([True, False]) == [False, True]


def test_abstractions_require_arg_placeholders():
    with pytest.raises(LambdaError):
        lambda_from_member("not an arg", "x")
    with pytest.raises(LambdaError):
        lambda_from_method(None, "x")
    with pytest.raises(LambdaError):
        lambda_from_self(3)


def test_walk_is_postorder():
    a = Arg(0)
    term = (lambda_from_member(a, "size") > 1) & (
        lambda_from_member(a, "size") < 9
    )
    kinds = [node.kind for node in term.walk()]
    assert kinds[-1] == "&&"
    assert kinds.count("attAccess") == 2
